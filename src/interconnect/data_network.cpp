#include "interconnect/data_network.hpp"

#include "common/log.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

DataNetwork::DataNetwork(unsigned num_cpus, const InterconnectParams &params)
    : params_(params), linkFree_(num_cpus, 0)
{
}

Tick
DataNetwork::deliver(CpuId dst, Tick start, Distance d, unsigned bytes)
{
    Tick &link = linkFree_[static_cast<unsigned>(dst)];
    const Tick begin = start > link ? start : link;
    stats_.linkWaitCycles += begin - start;
    // Link occupancy: bytes at dataBytesPerSystemCycle.
    const Tick occupancy =
        (bytes + params_.dataBytesPerSystemCycle - 1) /
        params_.dataBytesPerSystemCycle * kCpuCyclesPerSystemCycle;
    link = begin + occupancy;
    ++stats_.transfers;
    stats_.bytes += bytes;
    return begin + params_.xferLatency(d);
}

void
DataNetwork::serialize(Serializer &s) const
{
    s.u64(linkFree_.size());
    for (Tick t : linkFree_)
        s.u64(t);
    s.u64(stats_.transfers);
    s.u64(stats_.bytes);
    s.u64(stats_.linkWaitCycles);
}

void
DataNetwork::deserialize(SectionReader &r)
{
    const std::uint64_t links = r.u64();
    if (links != linkFree_.size())
        fatal("snapshot section '%s': data-network link count mismatch "
              "(%llu stored vs %zu here)",
              r.name().c_str(), static_cast<unsigned long long>(links),
              linkFree_.size());
    for (Tick &t : linkFree_)
        t = r.u64();
    stats_.transfers = r.u64();
    stats_.bytes = r.u64();
    stats_.linkWaitCycles = r.u64();
}

void
DataNetwork::addStats(StatGroup &group) const
{
    group.addScalar("data_net.transfers", "data transfers delivered",
                    &stats_.transfers);
    group.addScalar("data_net.bytes", "total bytes moved", &stats_.bytes);
    group.addScalar("data_net.link_wait_cycles",
                    "cycles transfers waited for a busy link",
                    &stats_.linkWaitCycles);
}

} // namespace cgct
