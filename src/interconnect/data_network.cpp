#include "interconnect/data_network.hpp"

namespace cgct {

DataNetwork::DataNetwork(unsigned num_cpus, const InterconnectParams &params)
    : params_(params), linkFree_(num_cpus, 0)
{
}

Tick
DataNetwork::deliver(CpuId dst, Tick start, Distance d, unsigned bytes)
{
    Tick &link = linkFree_[static_cast<unsigned>(dst)];
    const Tick begin = start > link ? start : link;
    stats_.linkWaitCycles += begin - start;
    // Link occupancy: bytes at dataBytesPerSystemCycle.
    const Tick occupancy =
        (bytes + params_.dataBytesPerSystemCycle - 1) /
        params_.dataBytesPerSystemCycle * kCpuCyclesPerSystemCycle;
    link = begin + occupancy;
    ++stats_.transfers;
    stats_.bytes += bytes;
    return begin + params_.xferLatency(d);
}

void
DataNetwork::addStats(StatGroup &group) const
{
    group.addScalar("data_net.transfers", "data transfers delivered",
                    &stats_.transfers);
    group.addScalar("data_net.bytes", "total bytes moved", &stats_.bytes);
    group.addScalar("data_net.link_wait_cycles",
                    "cycles transfers waited for a busy link",
                    &stats_.linkWaitCycles);
}

} // namespace cgct
