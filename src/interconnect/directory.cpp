#include "interconnect/directory.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/trace_sink.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

DirectoryInterconnect::DirectoryInterconnect(
    EventQueue &eq, const InterconnectParams &params, const AddressMap &map,
    DataNetwork &data_net, std::vector<MemoryController *> mem_ctrls,
    const TopologyParams &topo, std::uint64_t region_bytes)
    : Interconnect(eq, params, map, data_net, std::move(mem_ctrls)),
      topo_(topo), regionBytes_(region_bytes),
      bankNextFree_(topo.numMemCtrls(), 0)
{
    if (topo_.numCpus > 64)
        panic("DirectoryInterconnect: sharer vectors are 64-bit; numCpus "
              "must be <= 64 (config.validate should have rejected this)");
}

void
DirectoryInterconnect::broadcast(const SystemRequest &req, ResponseFn fn)
{
    const Tick now = eq_.now();

    // Point-to-point delivery to the line's home controller, at the
    // direct-request latency of the requester->home distance class.
    const MemCtrlId mc = map_.controllerOf(req.lineAddr);
    const Tick arrive =
        now + params_.directLatency(map_.distanceToCtrl(req.cpu, mc));

    // FCFS at the home directory bank.
    const unsigned bank = static_cast<unsigned>(mc);
    const Tick g = std::max(bankNextFree_[bank], arrive);
    bankNextFree_[bank] = g + params_.busSlot;
    stats_.queueCycles += g - arrive;
    ++stats_.broadcasts;
    traffic_.note(g);
    CGCT_TRACE(trace_, busGrant(g, req.cpu, req.type, req.lineAddr,
                                g - arrive));

    eq_.schedule(g + params_.dirLookupLatency,
                 [this, req, fn = std::move(fn)]() mutable {
                     lookup(req, std::move(fn));
                 },
                 EventPriority::Snoop);
}

void
DirectoryInterconnect::lookup(const SystemRequest &req, ResponseFn fn)
{
    // The snoop set: the full-map sharer vector, widened by the sticky
    // region presence that covers CGCT direct fills the directory never
    // saw. DMA requests have no directory entry discipline of their own
    // and snoop everyone, as on the flat bus.
    std::uint64_t mask;
    if (static_cast<unsigned>(req.cpu) >= topo_.numCpus)
        mask = kSnoopAll;
    else if (req.type == RequestType::Writeback)
        // A write-back only deposits data at its home controller; it
        // needs no snoops at all (they are state-neutral on others).
        mask = 0;
    else
        mask = sharerMask(req.lineAddr) | presenceOf(req.lineAddr);
    CGCT_TRACE(trace_, dirLookup(eq_.now(), req.cpu, req.type,
                                 req.lineAddr, mask));

    // A lookup that only snoops the requester's own chip (or nobody)
    // kept the request off the remote-snoop paths.
    std::uint64_t beyond = mask;
    if (static_cast<unsigned>(req.cpu) < topo_.numCpus) {
        beyond &= ~chipMask(topo_.chipOfCpu(req.cpu));
        beyond &= ~(1ULL << static_cast<unsigned>(req.cpu));
    }
    if (beyond != 0)
        ++stats_.interChip;
    else
        ++stats_.localResolves;

    // Pre-seed the requester's bits: the post-resolve hook (invariant
    // checker) fires inside resolveRequest, after the response installed
    // the line but before updateDirectory could run. The mask above is
    // already computed, so the early bits change no snoop decision; an
    // exclusive grant overwrites the vector right after anyway.
    if (static_cast<unsigned>(req.cpu) < topo_.numCpus &&
        req.type != RequestType::Writeback) {
        sharers_[req.lineAddr] |= 1ULL << static_cast<unsigned>(req.cpu);
        presence_[regionOf(req.lineAddr)] |=
            chipMask(topo_.chipOfCpu(req.cpu));
    }

    const ResolveOutcome out = resolveRequest(req, fn, mask);
    updateDirectory(req, out.getsExclusive);
}

void
DirectoryInterconnect::updateDirectory(const SystemRequest &req,
                                       bool gets_exclusive)
{
    if (static_cast<unsigned>(req.cpu) >= topo_.numCpus) {
        // DMA write: every cached copy was invalidated by the snoop.
        // DMA read: copies survive (at most downgraded), keep the entry.
        if (gets_exclusive)
            sharers_.erase(req.lineAddr);
        return;
    }
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(req.cpu);
    if (req.type == RequestType::Writeback) {
        const auto it = sharers_.find(req.lineAddr);
        if (it != sharers_.end()) {
            it->second &= ~bit;
            if (it->second == 0)
                sharers_.erase(it);
        }
        return;
    }
    if (gets_exclusive)
        sharers_[req.lineAddr] = bit;
    else
        sharers_[req.lineAddr] |= bit;
    // Chip-granular, like the hierarchy's map: a sibling core sharing
    // the requester's chip RCA can direct-fill lines of this region
    // without a directory lookup of its own.
    presence_[regionOf(req.lineAddr)] |=
        chipMask(topo_.chipOfCpu(req.cpu));
}

void
DirectoryInterconnect::warmNote(const SystemRequest &req,
                                bool gets_exclusive)
{
    updateDirectory(req, gets_exclusive);
}

void
DirectoryInterconnect::addStats(StatGroup &group) const
{
    group.addScalar("dir.lookups",
                    "requests looked up at a home directory bank",
                    &stats_.broadcasts);
    group.addScalar("dir.queue_cycles",
                    "total cycles requests waited at directory banks",
                    &stats_.queueCycles);
    group.addScalar("dir.local_resolves",
                    "lookups whose snoop set stayed on the requester's "
                    "chip",
                    &stats_.localResolves);
    group.addScalar("dir.interchip",
                    "lookups that had to snoop remote processors",
                    &stats_.interChip);
    group.addScalar("dir.cache_to_cache",
                    "reads whose data came from another cache",
                    &stats_.cacheToCache);
    group.addScalar("dir.memory_supplied",
                    "reads whose data came from DRAM",
                    &stats_.memorySupplied);
    group.addDerived("dir.avg_per_100k",
                     "average lookups per 100K cycles",
                     [this] {
                         return traffic_.averagePerWindow(eq_.now());
                     });
    group.addDerived("dir.peak_per_100k",
                     "peak lookups in any 100K-cycle window",
                     [this] {
                         return static_cast<double>(
                             traffic_.peakWindowCount());
                     });
    group.addDerived("dir.entries",
                     "live full-map directory entries",
                     [this] {
                         return static_cast<double>(sharers_.size());
                     });
}

namespace {

void
serializeSortedMap(Serializer &s,
                   const std::unordered_map<Addr, std::uint64_t> &m)
{
    std::vector<std::pair<Addr, std::uint64_t>> entries(m.begin(), m.end());
    std::sort(entries.begin(), entries.end());
    s.u64(entries.size());
    for (const auto &e : entries) {
        s.u64(e.first);
        s.u64(e.second);
    }
}

void
deserializeMap(SectionReader &r,
               std::unordered_map<Addr, std::uint64_t> &m)
{
    m.clear();
    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; i < entries; ++i) {
        const Addr key = r.u64();
        m[key] = r.u64();
    }
}

} // namespace

void
DirectoryInterconnect::serialize(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(bankNextFree_.size()));
    for (const Tick t : bankNextFree_)
        s.u64(t);
    s.u64(stats_.broadcasts);
    s.u64(stats_.queueCycles);
    s.u64(stats_.cacheToCache);
    s.u64(stats_.memorySupplied);
    s.u64(stats_.localResolves);
    s.u64(stats_.interChip);
    traffic_.serialize(s);
    serializeSortedMap(s, sharers_);
    serializeSortedMap(s, presence_);
}

void
DirectoryInterconnect::deserialize(SectionReader &r)
{
    const std::uint32_t n = r.u32();
    if (n != bankNextFree_.size())
        panic("DirectoryInterconnect: snapshot has %u banks, system has "
              "%zu",
              n, bankNextFree_.size());
    for (Tick &t : bankNextFree_)
        t = r.u64();
    stats_.broadcasts = r.u64();
    stats_.queueCycles = r.u64();
    stats_.cacheToCache = r.u64();
    stats_.memorySupplied = r.u64();
    stats_.localResolves = r.u64();
    stats_.interChip = r.u64();
    traffic_.deserialize(r);
    deserializeMap(r, sharers_);
    deserializeMap(r, presence_);
}

} // namespace cgct
