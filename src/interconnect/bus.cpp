#include "interconnect/bus.hpp"

#include "common/log.hpp"
#include "common/trace_sink.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

Bus::Bus(EventQueue &eq, const InterconnectParams &params,
         const AddressMap &map, DataNetwork &data_net,
         std::vector<MemoryController *> mem_ctrls)
    : Interconnect(eq, params, map, data_net, std::move(mem_ctrls))
{
}

void
Bus::broadcast(const SystemRequest &req, ResponseFn fn)
{
    if (logicalGrants_) {
        // Hub-context callers (DMA) issue at the hub clock.
        broadcastAt(req, std::move(fn), eq_.now());
        return;
    }
    queue_.push_back(Pending{req, std::move(fn), eq_.now()});
    if (!grantScheduled_)
        scheduleGrant();
}

void
Bus::broadcastAt(const SystemRequest &req, ResponseFn fn, Tick enq)
{
    if (!logicalGrants_)
        panic("Bus: broadcastAt outside logical-grant (PDES) mode");
    // Inline FCFS arbitration: identical to the grant-event recurrence
    // g = max(enq, previous grant + busSlot), with the same side effects
    // in the same order (see Bus::grant).
    const Tick g = nextFreeSlot_ > enq ? nextFreeSlot_ : enq;
    // The per-grant accounting belongs to tick g, which can lie beyond
    // the hub clock (backlogged bus) — defer it so a stats reset between
    // enqueue and grant classifies the broadcast exactly as the
    // sequential grant event would (see settleGrants).
    grantCharges_.push_back(GrantCharge{g, g - enq});
    CGCT_TRACE(trace_, busGrant(g, req.cpu, req.type, req.lineAddr,
                                g - enq));
    nextFreeSlot_ = g + params_.busSlot;
    ++syntheticGrants_;

    eq_.schedule(g + params_.snoopLatency,
                 [this, req, fn = std::move(fn)]() mutable {
                     resolve(req, std::move(fn));
                 },
                 EventPriority::Snoop);
}

void
Bus::settleGrants(Tick up_to)
{
    // Charges are queued in grant-tick order (the logical recurrence is
    // monotone), so a prefix drain applies them in sequential order.
    while (!grantCharges_.empty() && grantCharges_.front().grant <= up_to) {
        const GrantCharge &c = grantCharges_.front();
        stats_.queueCycles += c.queued;
        ++stats_.broadcasts;
        traffic_.note(c.grant);
        grantCharges_.pop_front();
    }
}

void
Bus::scheduleGrant()
{
    grantScheduled_ = true;
    const Tick when =
        nextFreeSlot_ > eq_.now() ? nextFreeSlot_ : eq_.now();
    eq_.schedule(when, [this] { grant(); }, EventPriority::Snoop);
}

void
Bus::grant()
{
    grantScheduled_ = false;
    if (queue_.empty())
        return;
    Pending p = std::move(queue_.front());
    queue_.pop_front();

    const Tick now = eq_.now();
    stats_.queueCycles += now - p.enqueued;
    ++stats_.broadcasts;
    traffic_.note(now);
    CGCT_TRACE(trace_, busGrant(now, p.req.cpu, p.req.type, p.req.lineAddr,
                                now - p.enqueued));
    nextFreeSlot_ = now + params_.busSlot;

    // The snoop resolves a fixed latency after the broadcast slot.
    eq_.schedule(now + params_.snoopLatency,
                 [this, p = std::move(p)]() mutable {
                     resolve(p.req, std::move(p.fn));
                 },
                 EventPriority::Snoop);

    if (!queue_.empty())
        scheduleGrant();
}

void
Bus::resolve(const SystemRequest &req, ResponseFn fn)
{
    resolveRequest(req, fn, kSnoopAll);
}

void
Bus::serialize(Serializer &s) const
{
    if (!queue_.empty() || grantScheduled_ || !grantCharges_.empty())
        panic("Bus: serializing with %zu requests queued and %zu grant "
              "charges unsettled — snapshots require a drained system",
              queue_.size(), grantCharges_.size());
    s.u64(nextFreeSlot_);
    s.u64(stats_.broadcasts);
    s.u64(stats_.queueCycles);
    s.u64(stats_.cacheToCache);
    s.u64(stats_.memorySupplied);
    traffic_.serialize(s);
}

void
Bus::deserialize(SectionReader &r)
{
    nextFreeSlot_ = r.u64();
    stats_.broadcasts = r.u64();
    stats_.queueCycles = r.u64();
    stats_.cacheToCache = r.u64();
    stats_.memorySupplied = r.u64();
    traffic_.deserialize(r);
}

void
Bus::addStats(StatGroup &group) const
{
    group.addScalar("bus.broadcasts", "requests broadcast on the bus",
                    &stats_.broadcasts);
    group.addScalar("bus.queue_cycles",
                    "total cycles requests waited for arbitration",
                    &stats_.queueCycles);
    group.addScalar("bus.cache_to_cache",
                    "reads whose data came from another cache",
                    &stats_.cacheToCache);
    group.addScalar("bus.memory_supplied",
                    "reads whose data came from DRAM",
                    &stats_.memorySupplied);
    group.addDerived("bus.avg_per_100k",
                     "average broadcasts per 100K cycles",
                     [this] {
                         return traffic_.averagePerWindow(eq_.now());
                     });
    group.addDerived("bus.peak_per_100k",
                     "peak broadcasts in any 100K-cycle window",
                     [this] {
                         return static_cast<double>(
                             traffic_.peakWindowCount());
                     });
}

} // namespace cgct
