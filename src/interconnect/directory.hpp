/**
 * @file
 * Full-map directory interconnect (docs/TOPOLOGY.md): the non-broadcast
 * baseline for machines where flat snooping is untenable. Every request
 * travels point-to-point to the home memory controller of its line
 * (interleave-determined, as in mem/address_map.hpp), queues FCFS at
 * that controller's directory bank, and after a tag lookup snoops only
 * the processors the directory believes may hold a copy.
 *
 * The directory keeps two structures: a per-line full-map sharer vector,
 * updated at every lookup from the combined snoop outcome (exclusive
 * grant -> {requester}, shared grant -> += requester, write-back ->
 * -= requester), and the same sticky region-granular presence map the
 * hierarchy uses — needed because CGCT direct requests legally bypass
 * the directory (their region-acquisition broadcast went through it),
 * so the sharer vector alone would under-approximate after direct
 * fills. Silent clean evictions leave stale sharer bits; both maps are
 * conservative supersets, so the snoop set is always sufficient.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace cgct {

/** Full-map directory at the home memory controllers. */
class DirectoryInterconnect : public Interconnect
{
  public:
    DirectoryInterconnect(EventQueue &eq, const InterconnectParams &params,
                          const AddressMap &map, DataNetwork &data_net,
                          std::vector<MemoryController *> mem_ctrls,
                          const TopologyParams &topo,
                          std::uint64_t region_bytes);

    void broadcast(const SystemRequest &req, ResponseFn fn) override;

    void warmNote(const SystemRequest &req, bool gets_exclusive) override;

    void addStats(StatGroup &group) const override;

    void serialize(Serializer &s) const override;
    void deserialize(SectionReader &r) override;

    bool tracksPresence() const override { return true; }
    std::uint64_t presenceMask(Addr line) const override
    {
        return presenceOf(line);
    }
    bool tracksSharers() const override { return true; }
    std::uint64_t sharerMask(Addr line) const override
    {
        const auto it = sharers_.find(line);
        return it == sharers_.end() ? 0 : it->second;
    }

    /** Corrupt directory state (invariant-checker injection test). */
    void corruptSharersForTest(Addr line, std::uint64_t mask)
    {
        sharers_[line] = mask;
        presence_[regionOf(line)] = mask;
    }

  private:
    /** Directory-bank tag lookup: snoop the sharer set and update it. */
    void lookup(const SystemRequest &req, ResponseFn fn);

    Addr regionOf(Addr line) const { return line & ~(regionBytes_ - 1); }

    std::uint64_t
    presenceOf(Addr line) const
    {
        const auto it = presence_.find(regionOf(line));
        return it == presence_.end() ? 0 : it->second;
    }

    /** Mask of the processors on chip @p chip. */
    std::uint64_t
    chipMask(unsigned chip) const
    {
        const unsigned lo = chip * topo_.cpusPerChip;
        std::uint64_t m = 0;
        for (unsigned c = lo; c < lo + topo_.cpusPerChip &&
                              c < topo_.numCpus; ++c)
            m |= 1ULL << c;
        return m;
    }

    /** Fold the resolved request into the sharer / presence maps. */
    void updateDirectory(const SystemRequest &req, bool gets_exclusive);

    TopologyParams topo_;
    std::uint64_t regionBytes_;

    /** FCFS arbitration cursor of each home directory bank. */
    std::vector<Tick> bankNextFree_;

    /** Line address -> full-map sharer vector. */
    std::unordered_map<Addr, std::uint64_t> sharers_;
    /** Region address -> sticky presence mask (covers direct fills). */
    std::unordered_map<Addr, std::uint64_t> presence_;
};

} // namespace cgct
