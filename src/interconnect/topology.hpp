/**
 * @file
 * Two-level snoop hierarchy (docs/TOPOLOGY.md). Each processor chip is
 * its own snoop domain with a short local combining latency; an
 * inter-chip broadcast level bridges the domains with the full Fireplane
 * snoop latency. A conservative region-granular presence map — the
 * RegionScout-style filter the bridge maintains by observing every
 * traversal — decides whether a request can resolve inside its local
 * domain or must escape: a request escapes only when the map shows a
 * processor outside the requester's chip that may hold lines (or an RCA
 * entry) in the request's region.
 *
 * Presence is sticky (bits are never cleared by evictions), so it is
 * always a superset of the true holders; snooping a superset is
 * protocol-safe, and the map can only cause extra escapes, never missed
 * snoops. CGCT composes multiplicatively: region-exclusive state converts
 * broadcasts into direct requests before they reach the bridge at all.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "interconnect/interconnect.hpp"

namespace cgct {

/** Per-chip snoop domains bridged by an inter-chip broadcast level. */
class HierRouter : public Interconnect
{
  public:
    HierRouter(EventQueue &eq, const InterconnectParams &params,
               const AddressMap &map, DataNetwork &data_net,
               std::vector<MemoryController *> mem_ctrls,
               const TopologyParams &topo, std::uint64_t region_bytes);

    void broadcast(const SystemRequest &req, ResponseFn fn) override;

    void warmNote(const SystemRequest &req, bool gets_exclusive) override;

    void addStats(StatGroup &group) const override;

    void serialize(Serializer &s) const override;
    void deserialize(SectionReader &r) override;

    bool tracksPresence() const override { return true; }
    std::uint64_t presenceMask(Addr line) const override
    {
        return presenceOf(line);
    }

    /** Corrupt the presence map (invariant-checker injection test). */
    void corruptPresenceForTest(Addr line, std::uint64_t mask)
    {
        presence_[regionOf(line)] = mask;
    }

  private:
    /** Local-domain stage: resolve on-chip or escape to the bridge. */
    void localStage(const SystemRequest &req, ResponseFn fn);

    Addr regionOf(Addr line) const { return line & ~(regionBytes_ - 1); }

    std::uint64_t
    presenceOf(Addr line) const
    {
        const auto it = presence_.find(regionOf(line));
        return it == presence_.end() ? 0 : it->second;
    }

    /** Mask of the processors on chip @p chip. */
    std::uint64_t
    chipMask(unsigned chip) const
    {
        const unsigned lo = chip * topo_.cpusPerChip;
        std::uint64_t m = 0;
        for (unsigned c = lo; c < lo + topo_.cpusPerChip &&
                              c < topo_.numCpus; ++c)
            m |= 1ULL << c;
        return m;
    }

    /**
     * Record that @p req's requester's *chip* may now hold lines (or an
     * RCA entry) in the request's region. Chip-granular, not
     * CPU-granular: with a chip-shared RCA (Section 3.2) a sibling core
     * can direct-fill lines through an entry this traversal created,
     * without ever traversing the interconnect itself — so the whole
     * chip must become snoopable at once. Called inside the resolve
     * event, before the response installs any state, so a later mask
     * computation at the same tick already sees the bits.
     */
    void
    notePresence(const SystemRequest &req)
    {
        if (static_cast<unsigned>(req.cpu) < topo_.numCpus &&
            req.type != RequestType::Writeback)
            presence_[regionOf(req.lineAddr)] |=
                chipMask(topo_.chipOfCpu(req.cpu));
    }

    TopologyParams topo_;
    std::uint64_t regionBytes_;

    /** FCFS arbitration cursor of each per-chip domain. */
    std::vector<Tick> domainNextFree_;
    /** FCFS arbitration cursor of the inter-chip level. */
    Tick globalNextFree_ = 0;

    /** Region address -> mask of processors that may hold it. */
    std::unordered_map<Addr, std::uint64_t> presence_;
};

} // namespace cgct
