#include "interconnect/topology.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/trace_sink.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

HierRouter::HierRouter(EventQueue &eq, const InterconnectParams &params,
                       const AddressMap &map, DataNetwork &data_net,
                       std::vector<MemoryController *> mem_ctrls,
                       const TopologyParams &topo,
                       std::uint64_t region_bytes)
    : Interconnect(eq, params, map, data_net, std::move(mem_ctrls)),
      topo_(topo), regionBytes_(region_bytes),
      domainNextFree_(topo.numChips(), 0)
{
    if (topo_.numCpus > 64)
        panic("HierRouter: presence masks are 64-bit; numCpus must be "
              "<= 64 (config.validate should have rejected this)");
}

void
HierRouter::broadcast(const SystemRequest &req, ResponseFn fn)
{
    const Tick enq = eq_.now();

    // I/O-bridge DMA has no snoop domain of its own: it enters at the
    // inter-chip level and snoops every processor, like on the flat bus.
    if (static_cast<unsigned>(req.cpu) >= topo_.numCpus) {
        const Tick g = std::max(globalNextFree_, enq);
        globalNextFree_ = g + params_.busSlot;
        stats_.queueCycles += g - enq;
        ++stats_.broadcasts;
        ++stats_.interChip;
        traffic_.note(g);
        CGCT_TRACE(trace_, busGrant(g, req.cpu, req.type, req.lineAddr,
                                    g - enq));
        eq_.schedule(g + params_.snoopLatency,
                     [this, req, fn = std::move(fn)]() mutable {
                         resolveRequest(req, fn, kSnoopAll);
                     },
                     EventPriority::Snoop);
        return;
    }

    // Local-domain FCFS arbitration, then the short on-chip snoop.
    const unsigned d = topo_.chipOfCpu(req.cpu);
    const Tick g = std::max(domainNextFree_[d], enq);
    domainNextFree_[d] = g + params_.busSlot;
    stats_.queueCycles += g - enq;
    ++stats_.broadcasts;
    traffic_.note(g);
    CGCT_TRACE(trace_, busGrant(g, req.cpu, req.type, req.lineAddr,
                                g - enq));
    eq_.schedule(g + params_.localSnoopLatency,
                 [this, req, fn = std::move(fn)]() mutable {
                     localStage(req, std::move(fn));
                 },
                 EventPriority::Snoop);
}

void
HierRouter::localStage(const SystemRequest &req, ResponseFn fn)
{
    const unsigned d = topo_.chipOfCpu(req.cpu);
    const std::uint64_t local = chipMask(d);
    const std::uint64_t remote = presenceOf(req.lineAddr) & ~local;

    // Write-backs never need remote snoops (they are state-neutral on
    // other processors), and a request whose region has no possible
    // holder outside the chip resolves entirely inside the domain. The
    // escape check and the resolution are one atomic event, so a
    // concurrent remote acquisition either already published its
    // presence bit (we escape and snoop it) or has not resolved yet
    // (it holds nothing to snoop).
    if (req.type == RequestType::Writeback || remote == 0) {
        ++stats_.localResolves;
        notePresence(req);
        resolveRequest(req, fn, local);
        return;
    }

    // Escape: bridge onto the inter-chip level, FCFS like the flat bus.
    ++stats_.interChip;
    CGCT_TRACE(trace_, hierEscape(eq_.now(), req.cpu, req.type,
                                  req.lineAddr, remote));
    const Tick now = eq_.now();
    const Tick g = std::max(globalNextFree_, now);
    globalNextFree_ = g + params_.busSlot;
    stats_.queueCycles += g - now;
    eq_.schedule(g + params_.snoopLatency,
                 [this, req, local, fn = std::move(fn)]() mutable {
                     // Recompute presence at resolution: it can only have
                     // grown, and snooping more processors is safe.
                     const std::uint64_t mask =
                         local | presenceOf(req.lineAddr);
                     notePresence(req);
                     resolveRequest(req, fn, mask);
                 },
                 EventPriority::Snoop);
}

void
HierRouter::warmNote(const SystemRequest &req, bool gets_exclusive)
{
    (void)gets_exclusive;
    notePresence(req);
}

void
HierRouter::addStats(StatGroup &group) const
{
    group.addScalar("hier.broadcasts",
                    "requests entering the snoop hierarchy",
                    &stats_.broadcasts);
    group.addScalar("hier.queue_cycles",
                    "total cycles requests waited for arbitration "
                    "(both levels)",
                    &stats_.queueCycles);
    group.addScalar("hier.local_resolves",
                    "requests resolved inside their chip's snoop domain",
                    &stats_.localResolves);
    group.addScalar("hier.interchip",
                    "requests escaping onto the inter-chip level",
                    &stats_.interChip);
    group.addScalar("hier.cache_to_cache",
                    "reads whose data came from another cache",
                    &stats_.cacheToCache);
    group.addScalar("hier.memory_supplied",
                    "reads whose data came from DRAM",
                    &stats_.memorySupplied);
    group.addDerived("hier.avg_per_100k",
                     "average requests per 100K cycles",
                     [this] {
                         return traffic_.averagePerWindow(eq_.now());
                     });
    group.addDerived("hier.peak_per_100k",
                     "peak requests in any 100K-cycle window",
                     [this] {
                         return static_cast<double>(
                             traffic_.peakWindowCount());
                     });
    group.addDerived("hier.bypass_fraction",
                     "fraction of requests resolved without the "
                     "inter-chip level",
                     [this] {
                         return stats_.broadcasts
                                    ? static_cast<double>(
                                          stats_.localResolves) /
                                          static_cast<double>(
                                              stats_.broadcasts)
                                    : 0.0;
                     });
}

void
HierRouter::serialize(Serializer &s) const
{
    s.u64(globalNextFree_);
    s.u32(static_cast<std::uint32_t>(domainNextFree_.size()));
    for (const Tick t : domainNextFree_)
        s.u64(t);
    s.u64(stats_.broadcasts);
    s.u64(stats_.queueCycles);
    s.u64(stats_.cacheToCache);
    s.u64(stats_.memorySupplied);
    s.u64(stats_.localResolves);
    s.u64(stats_.interChip);
    traffic_.serialize(s);

    // The presence map in deterministic (sorted) order.
    std::vector<std::pair<Addr, std::uint64_t>> entries(presence_.begin(),
                                                        presence_.end());
    std::sort(entries.begin(), entries.end());
    s.u64(entries.size());
    for (const auto &e : entries) {
        s.u64(e.first);
        s.u64(e.second);
    }
}

void
HierRouter::deserialize(SectionReader &r)
{
    globalNextFree_ = r.u64();
    const std::uint32_t n = r.u32();
    if (n != domainNextFree_.size())
        panic("HierRouter: snapshot has %u snoop domains, system has %zu",
              n, domainNextFree_.size());
    for (Tick &t : domainNextFree_)
        t = r.u64();
    stats_.broadcasts = r.u64();
    stats_.queueCycles = r.u64();
    stats_.cacheToCache = r.u64();
    stats_.memorySupplied = r.u64();
    stats_.localResolves = r.u64();
    stats_.interChip = r.u64();
    traffic_.deserialize(r);

    presence_.clear();
    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; i < entries; ++i) {
        const Addr region = r.u64();
        presence_[region] = r.u64();
    }
}

} // namespace cgct
