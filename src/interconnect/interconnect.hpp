/**
 * @file
 * Abstract coherence interconnect. The original single Fireplane-like
 * broadcast bus is one implementation; the two-level snoop hierarchy and
 * the full-map directory (docs/TOPOLOGY.md) are the others. All three
 * share the snoop-combining ordering point: a request is granted, every
 * selected processor is snooped (line phase, then region phase), the
 * owning memory controller is identified, and data is delivered either
 * cache-to-cache or from DRAM overlapped with the snoop.
 *
 * The topologies differ only in *which* processors are snooped and *when*
 * the combined resolution fires — the shared resolveRequest() helper takes
 * a processor mask so that a per-chip snoop domain or a directory sharer
 * vector can restrict the snoop set without duplicating the combining
 * logic. Snooping a superset of the true holders is always protocol-safe
 * (a snoop is a no-op on a processor with no copy), so mask computation
 * only affects timing and traffic, never MOESI/CGCT correctness.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/config.hpp"
#include "common/inline_function.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "coherence/snoop.hpp"
#include "event/event_queue.hpp"
#include "interconnect/data_network.hpp"
#include "mem/address_map.hpp"
#include "mem/memory_controller.hpp"

namespace cgct {

class TraceSink;

/**
 * Interface every processor node exposes to the interconnect. Snoops are
 * applied in two phases at the resolution tick: first the conventional
 * line snoop (which mutates MOESI state), then the region snoop (which
 * reports the CGCT region bits and applies the Figure 5 downgrade).
 */
class SnoopClient
{
  public:
    virtual ~SnoopClient() = default;

    virtual CpuId cpuId() const = 0;

    /** Apply the line-level snoop and report the outcome. */
    virtual LineSnoopOutcome snoopLine(const SystemRequest &req) = 0;

    /**
     * Report this processor's region-status bits for the request's region
     * and apply the external-request downgrade.
     * @param requester_gets_exclusive whether the requester will end up
     *        with a modifiable (or silently-upgradable) copy of the line.
     */
    virtual RegionSnoopBits
    snoopRegion(const SystemRequest &req, bool requester_gets_exclusive) = 0;
};

/** Base class of every interconnect topology (bus / hier / dir). */
class Interconnect
{
  public:
    /**
     * Inline capture capacity of a snoop-response continuation: sized for
     * the node's continuation (node pointer + request descriptor + issue
     * tick; the completion context itself lives in the requester's MSHR
     * slot) with no heap fallback.
     */
    static constexpr std::size_t kResponseFnCapacity = 48;

    /**
     * Called with the aggregated response when the snoop resolves.
     * Allocation-free: the capture lives inline in the request queue /
     * event wheel (oversized captures fail to compile).
     * @param data_ready tick when the critical word reaches the requester
     *        (equals the resolution tick for requests without data).
     */
    using ResponseFn =
        InlineFunction<void(const SnoopResponse &, Tick data_ready),
                       kResponseFnCapacity>;

    /** Observer invoked at resolution time *before* any state changes. */
    using Observer = std::function<void(const SystemRequest &)>;

    /**
     * Hook invoked after a resolution fully completes (response delivered,
     * requester state updated). The invariant checker uses it to validate
     * region state against cache contents at the ordering point.
     */
    using PostResolveFn = std::function<void(const SystemRequest &)>;

    Interconnect(EventQueue &eq, const InterconnectParams &params,
                 const AddressMap &map, DataNetwork &data_net,
                 std::vector<MemoryController *> mem_ctrls);
    virtual ~Interconnect() = default;

    /** Register a processor node. */
    void addClient(SnoopClient *client) { clients_.push_back(client); }

    /** Register a pre-snoop observer (the unnecessary-broadcast oracle). */
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    void setPostResolveHook(PostResolveFn fn) { postResolve_ = std::move(fn); }

    /** Emit grant / resolve trace events to @p sink. */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /**
     * Route @p req through the topology, invoking @p fn at resolution.
     * Must be called at the issuing event's time (grants are FCFS).
     */
    virtual void broadcast(const SystemRequest &req, ResponseFn fn) = 0;

    /**
     * PDES logical-grant entry point (docs/PDES.md). Only the flat bus
     * participates in sharded runs; other topologies panic.
     */
    virtual void broadcastAt(const SystemRequest &req, ResponseFn fn,
                             Tick enq);

    /**
     * Functional-warming mirror of broadcast (docs/SAMPLING.md): the node
     * applied the snoop fan-out itself with no timing events, and reports
     * the request here so topology-private tracking state (presence /
     * sharer maps) stays in sync with the caches it summarizes.
     */
    virtual void warmNote(const SystemRequest &req, bool gets_exclusive)
    {
        (void)req;
        (void)gets_exclusive;
    }

    struct Stats {
        std::uint64_t broadcasts = 0;
        std::uint64_t queueCycles = 0;      ///< Arbitration wait.
        std::uint64_t cacheToCache = 0;     ///< Data supplied by a cache.
        std::uint64_t memorySupplied = 0;   ///< Data supplied by DRAM.
        /** Requests resolved inside the requester's snoop domain. */
        std::uint64_t localResolves = 0;
        /** Requests that crossed the inter-chip level. */
        std::uint64_t interChip = 0;
    };

    const Stats &stats() const { return stats_; }
    const IntervalTracker &traffic() const { return traffic_; }
    IntervalTracker &traffic() { return traffic_; }

    /**
     * Requests that occupied the inter-chip level: every broadcast on the
     * flat bus, the escapes of the hierarchy, the remote-snooping lookups
     * of the directory. The scaling figure's headline metric.
     */
    virtual std::uint64_t interChipBroadcasts() const
    {
        return stats_.interChip;
    }

    /** Requests resolved without leaving the requester's chip. */
    virtual std::uint64_t localDomainResolves() const
    {
        return stats_.localResolves;
    }

    virtual void addStats(StatGroup &group) const = 0;

    /** Clear counters; traffic windows restart at @p now. */
    virtual void
    resetStats(Tick now)
    {
        stats_ = Stats{};
        traffic_.reset(now);
    }

    /**
     * Checkpoint support. Topologies must refuse to serialize in-flight
     * requests (snapshots require a drained system).
     */
    virtual void serialize(Serializer &s) const = 0;
    virtual void deserialize(SectionReader &r) = 0;

    /**
     * Invariant-checker introspection (sim/invariants.hpp). A topology
     * that filters snoops by a conservative presence map exposes it here
     * so the checker can prove the map is a superset of the ground truth;
     * the flat bus snoops everyone and reports all-ones.
     */
    virtual bool tracksPresence() const { return false; }
    virtual std::uint64_t presenceMask(Addr line) const
    {
        (void)line;
        return ~0ULL;
    }
    /** Directory sharer vector for @p line (directory topology only). */
    virtual bool tracksSharers() const { return false; }
    virtual std::uint64_t sharerMask(Addr line) const
    {
        (void)line;
        return ~0ULL;
    }

  protected:
    struct ResolveOutcome {
        bool getsExclusive;
        Tick dataReady;
    };

    /**
     * The shared ordering point: snoop every registered client selected
     * by @p snoop_mask (bit per CPU; CPUs >= 64 are always snooped),
     * combine the line and region responses, start the overlapped DRAM
     * access or the cache-to-cache transfer, deliver the response and run
     * the post-resolve hook. Identical to the original Bus resolution for
     * snoop_mask == kSnoopAll.
     */
    ResolveOutcome resolveRequest(const SystemRequest &req, ResponseFn &fn,
                                  std::uint64_t snoop_mask);

    static bool
    maskHas(std::uint64_t mask, CpuId cpu)
    {
        return static_cast<unsigned>(cpu) >= 64 ||
               ((mask >> static_cast<unsigned>(cpu)) & 1) != 0;
    }

    static constexpr std::uint64_t kSnoopAll = ~0ULL;

    EventQueue &eq_;
    InterconnectParams params_;
    const AddressMap &map_;
    DataNetwork &dataNet_;
    std::vector<MemoryController *> memCtrls_;
    std::vector<SnoopClient *> clients_;
    Observer observer_;
    PostResolveFn postResolve_;
    TraceSink *trace_ = nullptr;

    Stats stats_;
    IntervalTracker traffic_{100000};
};

} // namespace cgct
