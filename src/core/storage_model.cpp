#include "core/storage_model.hpp"

#include <iomanip>
#include <ostream>

#include "common/log.hpp"
#include "common/types.hpp"

namespace cgct {

namespace {

/**
 * ECC bits per RCA set, matching the paper's Table 2 accounting: 8 bits of
 * SEC-DED protection per set, with one additional bit once the protected
 * payload exceeds 65 bits (the 4K-entry design points).
 */
unsigned
rcaEccBits(unsigned payload_bits)
{
    return payload_bits > 65 ? 9 : 8;
}

} // namespace

RcaStorageRow
computeRcaStorage(const RcaDesignPoint &dp)
{
    if (!isPowerOfTwo(dp.regionBytes) || !isPowerOfTwo(dp.rcaEntries))
        fatal("storage model: sizes must be powers of two");

    RcaStorageRow row;
    const std::uint64_t rca_sets = dp.rcaEntries / dp.rcaWays;
    const unsigned region_offset_bits =
        log2i(dp.regionBytes);
    const unsigned rca_index_bits = log2i(rca_sets);
    row.tagBits = dp.physAddrBits - region_offset_bits - rca_index_bits;

    const unsigned lines_per_region =
        static_cast<unsigned>(dp.regionBytes / dp.cacheLineBytes);
    // The count ranges 0..lines_per_region inclusive.
    row.lineCountBits = log2i(lines_per_region) + 1;
    row.memCtrlIdBits = dp.memCtrlIdBits;
    row.stateBits = 3;
    row.lruBits = 1;

    const unsigned payload =
        dp.rcaWays * (row.tagBits + row.stateBits + row.lineCountBits +
                      row.memCtrlIdBits) +
        row.lruBits;
    row.eccBits = rcaEccBits(payload);
    row.totalBitsPerSet = payload + row.eccBits;

    // Companion cache accounting (Section 3.2): per line a tag, 3 state
    // bits, and 8 bytes of data ECC; per set one LRU bit and 8 ECC bits
    // for the tags and state.
    const std::uint64_t cache_lines = dp.cacheBytes / dp.cacheLineBytes;
    const std::uint64_t cache_sets = cache_lines / dp.cacheWays;
    const unsigned cache_tag_bits = dp.physAddrBits -
                                    log2i(dp.cacheLineBytes) -
                                    log2i(cache_sets);
    const unsigned cache_tagspace_per_set =
        dp.cacheWays * (cache_tag_bits + 3 + 64) + 1 + 8;
    const unsigned cache_total_per_set =
        cache_tagspace_per_set + dp.cacheWays * dp.cacheLineBytes * 8;

    const double rca_total =
        static_cast<double>(row.totalBitsPerSet) *
        static_cast<double>(rca_sets);
    const double cache_tagspace = static_cast<double>(
        cache_tagspace_per_set) * static_cast<double>(cache_sets);
    const double cache_total = static_cast<double>(cache_total_per_set) *
                               static_cast<double>(cache_sets);

    row.tagSpaceOverhead = rca_total / cache_tagspace;
    row.cacheSpaceOverhead = rca_total / cache_total;
    return row;
}

void
printStorageTable(std::ostream &os)
{
    os << "Table 2. Storage overhead for varying array sizes and region "
          "sizes.\n";
    os << std::left << std::setw(34) << "Design point" << std::right
       << std::setw(6) << "Tag" << std::setw(7) << "State" << std::setw(7)
       << "Count" << std::setw(5) << "MC" << std::setw(5) << "LRU"
       << std::setw(5) << "ECC" << std::setw(7) << "Total" << std::setw(10)
       << "Tag-ovh" << std::setw(11) << "Cache-ovh" << "\n";
    for (std::uint64_t entries : {4096ULL, 8192ULL, 16384ULL}) {
        for (std::uint64_t region : {256ULL, 512ULL, 1024ULL}) {
            RcaDesignPoint dp;
            dp.rcaEntries = entries;
            dp.regionBytes = region;
            const RcaStorageRow row = computeRcaStorage(dp);
            os << std::left << std::setw(2) << ""
               << std::setw(5) << (std::to_string(entries / 1024) + "K")
               << "entries, " << std::setw(5) << region << " B regions"
               << std::right << std::setw(7) << row.tagBits << std::setw(7)
               << row.stateBits << std::setw(7) << row.lineCountBits
               << std::setw(5) << row.memCtrlIdBits << std::setw(5)
               << row.lruBits << std::setw(5) << row.eccBits << std::setw(7)
               << row.totalBitsPerSet << std::setw(9) << std::fixed
               << std::setprecision(1) << row.tagSpaceOverhead * 100.0
               << "%" << std::setw(10) << row.cacheSpaceOverhead * 100.0
               << "%\n";
        }
    }
}

} // namespace cgct
