/**
 * @file
 * Analytic storage-overhead model reproducing Table 2 of the paper: the
 * per-set bit budget of a Region Coherence Array (address tags, region
 * state, line count, memory-controller index, LRU, ECC) and its overhead
 * relative to the tag space and total space of the companion cache.
 *
 * The reference design point (Section 3.2): 40-bit physical addresses, a
 * 1 MB 2-way set-associative cache with 64-byte lines (21-bit tags, 3 state
 * bits, 8 bytes of data ECC per line, 1 LRU bit and 8 tag-ECC bits per
 * set — 23 bytes per set in total).
 */

#pragma once

#include <cstdint>
#include <iosfwd>

namespace cgct {

/** Inputs for one Table 2 row. */
struct RcaDesignPoint {
    unsigned physAddrBits = 40;
    std::uint64_t rcaEntries = 16 * 1024;
    unsigned rcaWays = 2;
    std::uint64_t regionBytes = 512;
    /** Companion cache (defaults: the paper's 1 MB 2-way, 64 B lines). */
    std::uint64_t cacheBytes = 1024 * 1024;
    unsigned cacheWays = 2;
    unsigned cacheLineBytes = 64;
    unsigned memCtrlIdBits = 6;
};

/** One computed Table 2 row. */
struct RcaStorageRow {
    unsigned tagBits = 0;         ///< Per entry.
    unsigned stateBits = 3;       ///< Per entry.
    unsigned lineCountBits = 0;   ///< Per entry.
    unsigned memCtrlIdBits = 6;   ///< Per entry.
    unsigned lruBits = 1;         ///< Per set.
    unsigned eccBits = 0;         ///< Per set.
    unsigned totalBitsPerSet = 0;
    double tagSpaceOverhead = 0.0;    ///< vs cache tag space (fraction).
    double cacheSpaceOverhead = 0.0;  ///< vs total cache space (fraction).
};

/** Compute one row of Table 2. */
RcaStorageRow computeRcaStorage(const RcaDesignPoint &dp);

/** Print the full Table 2 sweep (4K/8K/16K entries x 256/512/1024 B). */
void printStorageTable(std::ostream &os);

} // namespace cgct
