/**
 * @file
 * The Coarse-Grain Coherence Tracking controller: drives the region
 * protocol over the Region Coherence Array on behalf of one processor
 * node. The node consults route() before sending a request to the system,
 * notifies the controller of broadcast responses / direct completions /
 * line fills and evictions, and forwards external region snoops.
 *
 * RegionTracker is the abstract interface so the RegionScout mechanism
 * (related work, Section 2) can be swapped in for comparison benches.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/rca.hpp"
#include "core/region_protocol.hpp"

namespace cgct {

class TraceSink;
class Serializer;
class SectionReader;
enum class TransitionCause : std::uint8_t;

/** Routing decision handed to the node. */
struct RouteDecision {
    RouteKind kind = RouteKind::Broadcast;
    /** Target controller for Direct routes (from the region entry). */
    MemCtrlId memCtrl = kInvalidMemCtrl;
    /** Region state that justified the decision (tracing/diagnostics). */
    RegionState state = RegionState::Invalid;
};

/**
 * Interface between a processor node and its coarse-grain tracking
 * mechanism (CGCT's RCA, RegionScout, or nothing).
 */
class RegionTracker
{
  public:
    /**
     * Called when a region eviction forces cache lines out to preserve
     * inclusion: the node must flush every cached line of the region,
     * sending dirty lines to @p mem_ctrl.
     */
    using FlushFn = std::function<void(Addr region_addr,
                                       std::uint64_t region_bytes,
                                       MemCtrlId mem_ctrl)>;

    virtual ~RegionTracker() = default;

    /** Register a flush handler (appends; one per sharing node). */
    virtual void setFlushHandler(FlushFn fn) = 0;

    /** Route a local request about to be sent to the system. */
    virtual RouteDecision route(RequestType type, Addr line_addr,
                                Tick now) = 0;

    /** A broadcast for @p line_addr resolved with the given response. */
    virtual void onBroadcastResponse(RequestType type, Addr line_addr,
                                     bool line_granted_exclusive,
                                     const SnoopResponse &resp,
                                     Tick now) = 0;

    /** A direct request was issued (region permission already held). */
    virtual void onDirectIssue(RequestType type, Addr line_addr,
                               bool line_granted_exclusive, Tick now) = 0;

    /** A request completed locally with no external request. */
    virtual void onLocalComplete(RequestType type, Addr line_addr,
                                 Tick now) = 0;

    /** A line of the region was installed in this processor's cache. */
    virtual void onLineFill(Addr line_addr) = 0;

    /** A line left this processor's cache (eviction or invalidation). */
    virtual void onLineEvict(Addr line_addr) = 0;

    /**
     * External snoop: report this processor's region bits and apply the
     * downgrade. Self-invalidation happens here when the line count is 0.
     */
    virtual RegionSnoopBits externalSnoop(Addr line_addr,
                                          bool external_gets_exclusive,
                                          Tick now) = 0;

    /** Current state for an address (tests / oracle), Invalid if absent. */
    virtual RegionState peekState(Addr line_addr) const = 0;

    virtual void addStats(StatGroup &group) const = 0;

    /** Emit region-protocol trace events to @p sink (default: none). */
    virtual void setTraceSink(TraceSink *sink) { (void)sink; }

    /**
     * Checkpoint support. Concrete trackers save/restore their tracking
     * structures; the defaults panic so a tracker without snapshot
     * support fails loudly instead of silently dropping state.
     */
    virtual void serialize(Serializer &s) const;
    virtual void deserialize(SectionReader &r);
};

/** The paper's CGCT mechanism: region protocol over an RCA. */
class CgctController : public RegionTracker
{
  public:
    CgctController(CpuId cpu, const CgctParams &params,
                   unsigned line_bytes);

    void
    setFlushHandler(FlushFn fn) override
    {
        flush_.push_back(std::move(fn));
    }

    RouteDecision route(RequestType type, Addr line_addr,
                        Tick now) override;
    void onBroadcastResponse(RequestType type, Addr line_addr,
                             bool line_granted_exclusive,
                             const SnoopResponse &resp, Tick now) override;
    void onDirectIssue(RequestType type, Addr line_addr,
                       bool line_granted_exclusive, Tick now) override;
    void onLocalComplete(RequestType type, Addr line_addr,
                         Tick now) override;
    void onLineFill(Addr line_addr) override;
    void onLineEvict(Addr line_addr) override;
    RegionSnoopBits externalSnoop(Addr line_addr,
                                  bool external_gets_exclusive,
                                  Tick now) override;
    RegionState peekState(Addr line_addr) const override;
    void addStats(StatGroup &group) const override;
    void setTraceSink(TraceSink *sink) override;

    RegionCoherenceArray &rca() { return rca_; }
    const RegionCoherenceArray &rca() const { return rca_; }

    const CgctParams &params() const { return params_; }

    /** Checkpoint support: the controller's only state is the RCA. */
    void serialize(Serializer &s) const override;
    void deserialize(SectionReader &r) override;

  private:
    /** Emit a region_transition event if the state actually changed. */
    void traceTransition(Tick now, Addr region_addr, RegionState before,
                         RegionState after, TransitionCause cause,
                         RegionSnoopBits bits, std::uint32_t line_count);

    /** Apply the three-state collapse when configured (Section 3.4). */
    RegionState squash(RegionState s) const
    {
        return params_.threeStateProtocol ? threeStateOf(s) : s;
    }

    CpuId cpu_;
    CgctParams params_;
    RegionCoherenceArray rca_;
    std::vector<FlushFn> flush_;
    TraceSink *trace_ = nullptr;
};

/**
 * Build the tracker configured by @p params: the CGCT controller when
 * enabled, nullptr when the system runs the conventional baseline.
 * The result is shareable between the cores of a chip.
 */
std::shared_ptr<RegionTracker> makeTracker(CpuId cpu,
                                           const CgctParams &params,
                                           unsigned line_bytes);

} // namespace cgct
