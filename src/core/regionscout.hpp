/**
 * @file
 * RegionScout (Moshovos, ISCA 2005), the less-precise coarse-grain filter
 * the paper compares against in Section 2. Implemented here as an
 * alternative RegionTracker so the benches can compare it to CGCT.
 *
 * Structures (following the RegionScout design):
 *  - NSRT (Not-Shared-Region Table): a small tagged set-associative table
 *    of regions known to be cached by no other processor, filled when a
 *    broadcast's snoop response shows no sharers, and invalidated whenever
 *    an external request touches the region.
 *  - CRH (Cached-Region Hash): an untagged array of counters hashed by
 *    region address, counting locally cached lines. A zero counter proves
 *    the region is not locally cached, letting this node answer external
 *    snoops with "no copies" without precise per-region state.
 *
 * Differences from CGCT that the benches surface: no memory-controller
 * index (write-backs still broadcast), a single imprecise response bit
 * (externally clean data cannot be read directly), and hash aliasing in
 * the CRH (a non-zero counter may be a false positive).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/cgct_controller.hpp"

namespace cgct {

/** Configuration for the RegionScout tracker. */
struct RegionScoutParams {
    std::uint64_t regionBytes = 512;
    std::uint64_t nsrtSets = 64;
    unsigned nsrtWays = 4;
    std::uint64_t crhEntries = 4096;  ///< Power of two.
};

/** RegionScout: NSRT + CRH. */
class RegionScout : public RegionTracker
{
  public:
    RegionScout(CpuId cpu, const RegionScoutParams &params,
                unsigned line_bytes);

    void
    setFlushHandler(FlushFn fn) override
    {
        flush_.push_back(std::move(fn));
    }

    RouteDecision route(RequestType type, Addr line_addr,
                        Tick now) override;
    void onBroadcastResponse(RequestType type, Addr line_addr,
                             bool line_granted_exclusive,
                             const SnoopResponse &resp, Tick now) override;
    void onDirectIssue(RequestType type, Addr line_addr,
                       bool line_granted_exclusive, Tick now) override;
    void onLocalComplete(RequestType type, Addr line_addr,
                         Tick now) override;
    void onLineFill(Addr line_addr) override;
    void onLineEvict(Addr line_addr) override;
    RegionSnoopBits externalSnoop(Addr line_addr,
                                  bool external_gets_exclusive,
                                  Tick now) override;
    RegionState peekState(Addr line_addr) const override;
    void addStats(StatGroup &group) const override;

    struct Stats {
        std::uint64_t nsrtHits = 0;
        std::uint64_t nsrtFills = 0;
        std::uint64_t nsrtInvalidations = 0;
        std::uint64_t crhFilteredSnoops = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Checkpoint support: NSRT entries, CRH counters and statistics. */
    void serialize(Serializer &s) const override;
    void deserialize(SectionReader &r) override;

  private:
    struct NsrtEntry {
        bool valid = false;
        Addr regionAddr = 0;
        Tick lastUse = 0;
    };

    Addr regionAlign(Addr a) const { return alignDown(a, regionBytes_); }
    std::uint64_t crhIndex(Addr region_addr) const;
    NsrtEntry *nsrtFind(Addr region_addr);
    void nsrtInsert(Addr region_addr, Tick now);
    void nsrtInvalidate(Addr region_addr);

    CpuId cpu_;
    std::uint64_t regionBytes_;
    std::uint64_t nsrtSets_;
    unsigned nsrtWays_;
    std::vector<NsrtEntry> nsrt_;
    std::vector<std::uint32_t> crh_;
    std::vector<FlushFn> flush_;
    Stats stats_;
};

} // namespace cgct
