#include "core/regionscout.hpp"

#include "common/log.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

RegionScout::RegionScout(CpuId cpu, const RegionScoutParams &params,
                         unsigned line_bytes)
    : cpu_(cpu), regionBytes_(params.regionBytes),
      nsrtSets_(params.nsrtSets), nsrtWays_(params.nsrtWays),
      nsrt_(params.nsrtSets * params.nsrtWays),
      crh_(params.crhEntries, 0)
{
    if (!isPowerOfTwo(params.crhEntries) || !isPowerOfTwo(params.nsrtSets))
        fatal("RegionScout: table sizes must be powers of two");
    if (params.regionBytes < line_bytes)
        fatal("RegionScout: region smaller than a line");
}

std::uint64_t
RegionScout::crhIndex(Addr region_addr) const
{
    // Simple multiplicative hash of the region number.
    const std::uint64_t region = region_addr / regionBytes_;
    return (region * 0x9e3779b97f4a7c15ULL) >> (64 - log2i(crh_.size()));
}

RegionScout::NsrtEntry *
RegionScout::nsrtFind(Addr region_addr)
{
    const std::uint64_t set =
        (region_addr / regionBytes_) & (nsrtSets_ - 1);
    NsrtEntry *base = &nsrt_[set * nsrtWays_];
    for (unsigned w = 0; w < nsrtWays_; ++w) {
        if (base[w].valid && base[w].regionAddr == region_addr)
            return &base[w];
    }
    return nullptr;
}

void
RegionScout::nsrtInsert(Addr region_addr, Tick now)
{
    if (nsrtFind(region_addr))
        return;
    const std::uint64_t set =
        (region_addr / regionBytes_) & (nsrtSets_ - 1);
    NsrtEntry *base = &nsrt_[set * nsrtWays_];
    NsrtEntry *victim = &base[0];
    for (unsigned w = 0; w < nsrtWays_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->regionAddr = region_addr;
    victim->lastUse = now;
    ++stats_.nsrtFills;
}

void
RegionScout::nsrtInvalidate(Addr region_addr)
{
    if (NsrtEntry *e = nsrtFind(region_addr)) {
        e->valid = false;
        ++stats_.nsrtInvalidations;
    }
}

RouteDecision
RegionScout::route(RequestType type, Addr line_addr, Tick now)
{
    RouteDecision d;
    const Addr region = regionAlign(line_addr);
    NsrtEntry *e = nsrtFind(region);
    if (!e)
        return d; // Broadcast: nothing is known about the region.
    e->lastUse = now;
    ++stats_.nsrtHits;
    // An NSRT hit proves "no other processor caches the region"; report
    // the equivalent exclusive region state (matches peekState()).
    d.state = RegionState::DirtyInvalid;

    switch (type) {
      case RequestType::Writeback:
        // RegionScout has no memory-controller index; write-backs keep
        // using the broadcast network to find their controller.
        d.kind = RouteKind::Broadcast;
        break;
      case RequestType::Upgrade:
      case RequestType::Dcbz:
      case RequestType::Dcbf:
      case RequestType::Dcbi:
        d.kind = RouteKind::LocalComplete;
        break;
      default:
        d.kind = RouteKind::Direct;
        // The global memory map is not known to the processor; direct
        // requests are routed by the fabric. The simulator models this by
        // leaving memCtrl unset and letting the node resolve it from the
        // address map at the fabric boundary.
        break;
    }
    return d;
}

void
RegionScout::onBroadcastResponse(RequestType type, Addr line_addr,
                                 bool /*line_granted_exclusive*/,
                                 const SnoopResponse &resp, Tick now)
{
    if (type == RequestType::Writeback)
        return;
    const Addr region = regionAlign(line_addr);
    if (resp.region.none())
        nsrtInsert(region, now); // Globally not shared.
    else
        nsrtInvalidate(region);
}

void
RegionScout::onDirectIssue(RequestType, Addr, bool, Tick)
{
    // Nothing to update: NSRT state is unaffected by our own accesses.
}

void
RegionScout::onLocalComplete(RequestType, Addr, Tick)
{
}

void
RegionScout::onLineFill(Addr line_addr)
{
    ++crh_[crhIndex(regionAlign(line_addr))];
}

void
RegionScout::onLineEvict(Addr line_addr)
{
    std::uint32_t &ctr = crh_[crhIndex(regionAlign(line_addr))];
    if (ctr == 0)
        panic("RegionScout cpu%d: CRH underflow", cpu_);
    --ctr;
}

RegionSnoopBits
RegionScout::externalSnoop(Addr line_addr, bool /*external_gets_excl*/,
                           Tick /*now*/)
{
    const Addr region = regionAlign(line_addr);
    // Any external activity in the region disproves "not shared".
    nsrtInvalidate(region);

    RegionSnoopBits bits;
    if (crh_[crhIndex(region)] == 0) {
        // Provably not cached locally: contribute nothing.
        ++stats_.crhFilteredSnoops;
        return bits;
    }
    // Imprecise: the region (or an alias) is cached here; the requester
    // must assume it could be dirty.
    bits.dirty = true;
    return bits;
}

RegionState
RegionScout::peekState(Addr line_addr) const
{
    return const_cast<RegionScout *>(this)->nsrtFind(
               regionAlign(line_addr))
               ? RegionState::DirtyInvalid
               : RegionState::Invalid;
}

void
RegionScout::serialize(Serializer &s) const
{
    s.u64(regionBytes_);
    s.u64(nsrtSets_);
    s.u32(nsrtWays_);
    s.u64(crh_.size());
    for (const NsrtEntry &e : nsrt_) {
        s.b(e.valid);
        s.u64(e.regionAddr);
        s.u64(e.lastUse);
    }
    for (std::uint32_t c : crh_)
        s.u32(c);
    s.u64(stats_.nsrtHits);
    s.u64(stats_.nsrtFills);
    s.u64(stats_.nsrtInvalidations);
    s.u64(stats_.crhFilteredSnoops);
}

void
RegionScout::deserialize(SectionReader &r)
{
    const std::uint64_t region_bytes = r.u64();
    const std::uint64_t nsrt_sets = r.u64();
    const std::uint32_t nsrt_ways = r.u32();
    const std::uint64_t crh_entries = r.u64();
    if (region_bytes != regionBytes_ || nsrt_sets != nsrtSets_ ||
        nsrt_ways != nsrtWays_ || crh_entries != crh_.size())
        fatal("snapshot section '%s': RegionScout geometry mismatch",
              r.name().c_str());
    for (NsrtEntry &e : nsrt_) {
        e.valid = r.b();
        e.regionAddr = r.u64();
        e.lastUse = r.u64();
    }
    for (std::uint32_t &c : crh_)
        c = r.u32();
    stats_.nsrtHits = r.u64();
    stats_.nsrtFills = r.u64();
    stats_.nsrtInvalidations = r.u64();
    stats_.crhFilteredSnoops = r.u64();
}

void
RegionScout::addStats(StatGroup &group) const
{
    group.addScalar("regionscout.nsrt_hits",
                    "requests routed using an NSRT entry",
                    &stats_.nsrtHits);
    group.addScalar("regionscout.nsrt_fills", "NSRT entries installed",
                    &stats_.nsrtFills);
    group.addScalar("regionscout.nsrt_invalidations",
                    "NSRT entries dropped on external activity",
                    &stats_.nsrtInvalidations);
    group.addScalar("regionscout.crh_filtered_snoops",
                    "external snoops answered 'not cached' by the CRH",
                    &stats_.crhFilteredSnoops);
}

} // namespace cgct
