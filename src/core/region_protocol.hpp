/**
 * @file
 * The region protocol of Section 3.1: seven stable states summarizing the
 * local and global coherence status of the lines in an aligned region
 * (Table 1), with the transitions of Figures 3-5.
 *
 * State naming: the first letter describes the local processor's lines in
 * the region (Clean = unmodified copies only, Dirty = may have modified
 * copies), the second describes the other processors' lines (Invalid = no
 * cached copies, Clean, Dirty). Invalid means this processor caches no
 * lines of the region and knows nothing about the others.
 *
 * All transitions are pure functions so they can be exhaustively tested;
 * the Region Coherence Array (rca.hpp) stores the state, and the CGCT
 * controller (cgct_controller.hpp) drives the transitions.
 */

#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"
#include "coherence/snoop.hpp"

namespace cgct {

/** The seven stable region states of Table 1. */
enum class RegionState : std::uint8_t {
    Invalid,       ///< I: no local copies; others unknown.
    CleanInvalid,  ///< CI: local clean only; no external copies.
    CleanClean,    ///< CC: local clean only; external unmodified only.
    CleanDirty,    ///< CD: local clean only; external may be modified.
    DirtyInvalid,  ///< DI: local may be modified; no external copies.
    DirtyClean,    ///< DC: local may be modified; external unmodified.
    DirtyDirty,    ///< DD: local may be modified; external may be modified.
};

/** Short name ("CI", "DD", ...). */
std::string_view regionStateName(RegionState s);

/** True for CI and DI: no other processor caches lines of the region. */
constexpr bool
isRegionExclusive(RegionState s)
{
    return s == RegionState::CleanInvalid || s == RegionState::DirtyInvalid;
}

/** True for CC and DC: other processors hold unmodified copies only. */
constexpr bool
isExternallyClean(RegionState s)
{
    return s == RegionState::CleanClean || s == RegionState::DirtyClean;
}

/** True for CD and DD: other processors may hold modified copies. */
constexpr bool
isExternallyDirty(RegionState s)
{
    return s == RegionState::CleanDirty || s == RegionState::DirtyDirty;
}

/** True when the local processor may hold modified lines (D-). */
constexpr bool
isLocallyDirty(RegionState s)
{
    return s == RegionState::DirtyInvalid || s == RegionState::DirtyClean ||
           s == RegionState::DirtyDirty;
}

/** How a local request is routed given the region state. */
enum class RouteKind : std::uint8_t {
    /** Must be broadcast to the whole system. */
    Broadcast,
    /** May be sent directly to the memory controller. */
    Direct,
    /** Completes locally with no external request at all. */
    LocalComplete,
};

/** Short name ("broadcast", "direct", "local") for stats and traces. */
std::string_view routeKindName(RouteKind kind);

/**
 * Routing decision of the region protocol (Table 1's "Broadcast Needed?"
 * column elaborated per request type):
 *  - exclusive regions (CI/DI): nothing needs a broadcast;
 *  - externally clean regions (CC/DC): reads of shared copies (instruction
 *    fetches, shared prefetches) may go directly to memory;
 *  - externally dirty regions (CD/DD) and Invalid: broadcast.
 *  - write-backs: direct whenever a region entry exists (any valid state),
 *    using the memory-controller index cached in the entry (Section 5.1);
 *  - upgrades and DCB operations in exclusive regions complete with no
 *    external request.
 *
 * Loads are *not* prevented from obtaining exclusive copies (Section 3.1),
 * so data reads are broadcast unless the region is CI or DI.
 */
RouteKind routeFor(RequestType type, RegionState state);

/**
 * New region state after a broadcast's snoop response (Figures 3 and 4).
 *
 * The external letter comes from the aggregated response bits; the local
 * letter becomes Dirty if the request takes a modifiable copy (or the line
 * is granted exclusively, enabling silent upgrades), and otherwise keeps /
 * establishes Clean.
 *
 * @param prev                 state before the broadcast (may be Invalid)
 * @param type                 the local request that was broadcast
 * @param line_granted_exclusive line returned in E or M state
 * @param resp                 combined Region Clean / Region Dirty bits
 */
RegionState afterBroadcast(RegionState prev, RequestType type,
                           bool line_granted_exclusive,
                           RegionSnoopBits resp);

/**
 * Silent local transition for requests that complete without a broadcast
 * (Figure 3's dashed CI -> DI edge): loading or creating a modifiable copy
 * in a CleanInvalid region moves it to DirtyInvalid.
 */
RegionState afterSilentLocal(RegionState prev, RequestType type,
                             bool line_granted_exclusive);

/**
 * Downgrade on an external request to a line in the region (Figure 5 top).
 *
 * @param prev                    state before the external request
 * @param external_gets_exclusive the external requester ends up with a
 *                                modifiable (or silently upgradable) copy
 */
RegionState afterExternalSnoop(RegionState prev,
                               bool external_gets_exclusive);

/**
 * The Region Clean / Region Dirty response bits this processor contributes
 * for a region it holds in state @p s (Section 3.4): C- states report
 * clean, D- states report dirty. Invalid contributes nothing.
 */
RegionSnoopBits regionResponseBits(RegionState s);

/**
 * Collapse a state to the scaled-back three-state protocol of Section 3.4
 * (exclusive / not-exclusive / invalid encoded as DI / DD / I), and
 * coarsen response bits to the single "region cached externally" bit.
 */
RegionState threeStateOf(RegionState s);
RegionSnoopBits threeStateBits(RegionSnoopBits bits);

} // namespace cgct
