#include "core/region_protocol.hpp"

namespace cgct {

std::string_view
regionStateName(RegionState s)
{
    switch (s) {
      case RegionState::Invalid:      return "I";
      case RegionState::CleanInvalid: return "CI";
      case RegionState::CleanClean:   return "CC";
      case RegionState::CleanDirty:   return "CD";
      case RegionState::DirtyInvalid: return "DI";
      case RegionState::DirtyClean:   return "DC";
      case RegionState::DirtyDirty:   return "DD";
    }
    return "?";
}

std::string_view
routeKindName(RouteKind kind)
{
    switch (kind) {
      case RouteKind::Broadcast:     return "broadcast";
      case RouteKind::Direct:        return "direct";
      case RouteKind::LocalComplete: return "local";
    }
    return "?";
}

RouteKind
routeFor(RequestType type, RegionState state)
{
    switch (type) {
      case RequestType::Writeback:
        // A valid region entry carries the memory-controller index, so the
        // write-back can bypass the broadcast regardless of sharing.
        return state == RegionState::Invalid ? RouteKind::Broadcast
                                             : RouteKind::Direct;

      case RequestType::Upgrade:
      case RequestType::Dcbz:
      case RequestType::Dcbf:
      case RequestType::Dcbi:
        // No data transfer needed; with no external copies these complete
        // immediately without any external request (Section 1.2).
        return isRegionExclusive(state) ? RouteKind::LocalComplete
                                        : RouteKind::Broadcast;

      case RequestType::Ifetch:
      case RequestType::Prefetch:
        // Reads of shared copies may go directly to memory from both the
        // exclusive and the externally clean states.
        if (isRegionExclusive(state) || isExternallyClean(state))
            return RouteKind::Direct;
        return RouteKind::Broadcast;

      case RequestType::Read:
      case RequestType::ReadExclusive:
      case RequestType::PrefetchExclusive:
        // Loads are not prevented from obtaining exclusive copies, so data
        // reads are broadcast unless no other processor caches the region.
        return isRegionExclusive(state) ? RouteKind::Direct
                                        : RouteKind::Broadcast;
    }
    return RouteKind::Broadcast;
}

namespace {

/** Compose a state from the two letters. */
RegionState
compose(bool local_dirty, bool ext_clean, bool ext_dirty)
{
    if (local_dirty) {
        if (ext_dirty)
            return RegionState::DirtyDirty;
        return ext_clean ? RegionState::DirtyClean
                         : RegionState::DirtyInvalid;
    }
    if (ext_dirty)
        return RegionState::CleanDirty;
    return ext_clean ? RegionState::CleanClean : RegionState::CleanInvalid;
}

} // namespace

RegionState
afterBroadcast(RegionState prev, RequestType type,
               bool line_granted_exclusive, RegionSnoopBits resp)
{
    if (type == RequestType::Writeback)
        return prev; // Write-backs carry no region consequences.

    const bool local_dirty = isLocallyDirty(prev) || wantsExclusive(type) ||
                             line_granted_exclusive;
    return compose(local_dirty, resp.clean, resp.dirty);
}

RegionState
afterSilentLocal(RegionState prev, RequestType type,
                 bool line_granted_exclusive)
{
    if (prev == RegionState::CleanInvalid &&
        (wantsExclusive(type) || line_granted_exclusive)) {
        return RegionState::DirtyInvalid; // Figure 3's dashed edge.
    }
    return prev;
}

RegionState
afterExternalSnoop(RegionState prev, bool external_gets_exclusive)
{
    if (prev == RegionState::Invalid)
        return prev;
    const bool local_dirty = isLocallyDirty(prev);
    if (external_gets_exclusive)
        return compose(local_dirty, false, true);
    // The external processor keeps only an unmodified copy: the external
    // letter rises to at least Clean but an existing Dirty is kept (other
    // processors may still hold modified lines).
    if (isExternallyDirty(prev))
        return prev;
    return compose(local_dirty, true, false);
}

RegionSnoopBits
regionResponseBits(RegionState s)
{
    RegionSnoopBits bits;
    if (s == RegionState::Invalid)
        return bits;
    if (isLocallyDirty(s))
        bits.dirty = true;
    else
        bits.clean = true;
    return bits;
}

RegionState
threeStateOf(RegionState s)
{
    if (s == RegionState::Invalid)
        return s;
    return isRegionExclusive(s) ? RegionState::DirtyInvalid
                                : RegionState::DirtyDirty;
}

RegionSnoopBits
threeStateBits(RegionSnoopBits bits)
{
    RegionSnoopBits out;
    out.dirty = bits.clean || bits.dirty; // single "cached externally" bit
    return out;
}

} // namespace cgct
