/**
 * @file
 * The Region Coherence Array (Section 3.2): a set-associative array, one
 * per processor, holding the region protocol state for large aligned
 * regions, a count of the region's lines cached by this processor (for
 * self-invalidation and replacement), and the memory-controller index
 * learned from the snoop response (for direct write-backs).
 *
 * Replacement favors regions with no cached lines — found via the line
 * count — so that evicting a region rarely forces cache-line evictions to
 * preserve inclusion. The paper reports 65.1% of evicted regions empty
 * with this policy at 512 B regions.
 *
 * Storage is split structure-of-arrays exactly like CacheArray (see
 * cache/cache_array.hpp): packed per-set tags, a per-set occupancy
 * bitmask scanned branch-free, a per-set MRU way hint, and a parallel
 * RegionEntry metadata array touched only on hit. Entry pointers are
 * stable until invalidation/reallocation. Lookups confirm
 * `state != Invalid` on a tag match so the allocate()-to-state-set
 * window (during which the controller runs inclusion flushes) reads as
 * a miss, matching the previous array-of-structs behavior.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/region_protocol.hpp"

namespace cgct {

class TraceSink;
class Serializer;
class SectionReader;

/** One RCA entry. */
struct RegionEntry {
    Addr regionAddr = 0;                    ///< Region-aligned address.
    RegionState state = RegionState::Invalid;
    std::uint32_t lineCount = 0;            ///< Lines cached locally.
    MemCtrlId memCtrl = kInvalidMemCtrl;    ///< Owning memory controller.
    Tick lastUse = 0;
    Tick allocTick = 0;                     ///< When the entry was filled.

    bool valid() const { return state != RegionState::Invalid; }
};

/** A region displaced by allocation; its lines must be flushed. */
struct RegionEviction {
    bool valid = false;
    Addr regionAddr = 0;
    RegionState state = RegionState::Invalid;
    std::uint32_t lineCount = 0;
    MemCtrlId memCtrl = kInvalidMemCtrl;
};

/** The per-processor Region Coherence Array. */
class RegionCoherenceArray
{
  public:
    /**
     * @param sets        number of sets (power of two)
     * @param ways        associativity
     * @param region_bytes region size (power of two, >= line size)
     * @param favor_empty replacement prefers regions with lineCount == 0
     */
    RegionCoherenceArray(std::uint64_t sets, unsigned ways,
                         std::uint64_t region_bytes, bool favor_empty);

    std::uint64_t regionBytes() const { return regionBytes_; }
    std::uint64_t numSets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Align an address to a region boundary. */
    Addr regionAlign(Addr addr) const
    {
        return alignDown(addr, regionBytes_);
    }

    /** Find the entry covering @p addr, or nullptr. */
    RegionEntry *find(Addr addr);
    const RegionEntry *find(Addr addr) const;

    /**
     * Side-effect-free lookup: like find() but touches neither the
     * hit/miss counters nor LRU. For the invariant checker and tests,
     * which must be able to observe the array without perturbing the
     * statistics the experiments record.
     */
    const RegionEntry *peekEntry(Addr addr) const;

    /**
     * Allocate an entry for @p addr's region, evicting per the policy if
     * the set is full. The new entry is Invalid-initialized except for its
     * regionAddr; the caller sets state/memCtrl.
     * @param[out] evicted the displaced region (caller must flush lines).
     */
    RegionEntry *allocate(Addr addr, Tick now, RegionEviction &evicted);

    /** Invalidate the entry covering @p addr if present. */
    void invalidate(Addr addr);

    /** LRU touch. */
    void touch(RegionEntry &entry, Tick now) { entry.lastUse = now; }

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t allocations = 0;
        /** Evicted-region line-count distribution (Section 3.2). */
        std::uint64_t evictedEmpty = 0;
        std::uint64_t evictedOneLine = 0;
        std::uint64_t evictedTwoLines = 0;
        std::uint64_t evictedMoreLines = 0;
        /** Cache lines flushed to preserve inclusion. */
        std::uint64_t inclusionFlushedLines = 0;
        /** Regions self-invalidated by the line-count mechanism. */
        std::uint64_t selfInvalidations = 0;
        /** Sum/samples of lineCount at eviction (avg lines per region). */
        std::uint64_t lineCountSum = 0;
        std::uint64_t lineCountSamples = 0;
    };

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }
    void addStats(StatGroup &group) const;

    /** Lines-cached-at-eviction histogram (Section 3.2's Figure 9 data). */
    const Histogram &evictedLinesHistogram() const { return evictedLines_; }
    /** Allocation-to-eviction lifetime of displaced regions, in ticks. */
    const Distribution &regionLifetime() const { return lifetime_; }

    /** Emit rca_evict trace events to @p sink on behalf of @p cpu. */
    void
    setTraceSink(TraceSink *sink, CpuId cpu)
    {
        trace_ = sink;
        traceCpu_ = cpu;
    }

    /** Visit every valid entry (non-owning visitor; see FunctionRef). */
    void forEachValidEntry(FunctionRef<void(const RegionEntry &)> fn) const;

    /** Count valid entries (O(1): maintained incrementally). */
    std::uint64_t countValid() const;

    void reset();

    /**
     * Checkpoint support: tags, occupancy, MRU hints, entry metadata,
     * statistics and the eviction histograms. Geometry is verified on
     * restore; mismatches fatal() with the section name.
     */
    void serialize(Serializer &s) const;
    void deserialize(SectionReader &r);

  private:
    std::uint64_t setIndex(Addr addr) const;
    /** Tag-match scan of one set; returns the way or ways_ on miss. */
    unsigned scanSet(std::size_t set, Addr tag) const;

    std::uint64_t sets_;
    unsigned ways_;
    std::uint64_t regionBytes_;
    unsigned regionShift_;
    bool favorEmpty_;
    /** Packed tags (`regionAddr >> regionShift_`), set-major. */
    std::vector<Addr> tags_;
    /** Per-set tag-occupancy bitmask (bit w = way w holds a tag). */
    std::vector<std::uint64_t> occupied_;
    /** Per-set most-recently-hit way hint. */
    std::vector<std::uint8_t> mruWay_;
    /** Entry metadata, parallel to tags_; touched only on hit. */
    std::vector<RegionEntry> entries_;
    /** Occupied-entry count, maintained incrementally. */
    std::uint64_t numValid_ = 0;
    Stats stats_;
    /** Lines cached at eviction: one bucket per count, 0..7, overflow. */
    Histogram evictedLines_{1, 8};
    Distribution lifetime_;
    TraceSink *trace_ = nullptr;
    CpuId traceCpu_ = kInvalidCpu;
};

} // namespace cgct
