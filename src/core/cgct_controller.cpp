#include "core/cgct_controller.hpp"

#include "common/log.hpp"
#include "common/trace_sink.hpp"

namespace cgct {

CgctController::CgctController(CpuId cpu, const CgctParams &params,
                               unsigned line_bytes)
    : cpu_(cpu), params_(params),
      rca_(params.rcaSets, params.rcaWays, params.regionBytes,
           params.favorEmptyRegions)
{
    if (params.regionBytes < line_bytes)
        fatal("CGCT: region size (%llu) smaller than line size (%u)",
              static_cast<unsigned long long>(params.regionBytes),
              line_bytes);
}

void
CgctController::setTraceSink(TraceSink *sink)
{
    trace_ = sink;
    rca_.setTraceSink(sink, cpu_);
}

void
CgctController::traceTransition(Tick now, Addr region_addr,
                                RegionState before, RegionState after,
                                TransitionCause cause, RegionSnoopBits bits,
                                std::uint32_t line_count)
{
    if (before == after)
        return;
    CGCT_TRACE(trace_, regionTransition(now, cpu_, region_addr, before,
                                        after, cause, bits, line_count));
}

RouteDecision
CgctController::route(RequestType type, Addr line_addr, Tick now)
{
    RouteDecision d;
    RegionEntry *entry = rca_.find(line_addr);
    const RegionState state = entry ? entry->state : RegionState::Invalid;
    d.kind = routeFor(type, state);
    d.state = state;
    if (entry) {
        d.memCtrl = entry->memCtrl;
        rca_.touch(*entry, now);
    }
    if (d.kind == RouteKind::Direct && d.memCtrl == kInvalidMemCtrl)
        panic("CGCT cpu%d: direct route without a memory-controller index",
              cpu_);
    return d;
}

void
CgctController::onBroadcastResponse(RequestType type, Addr line_addr,
                                    bool line_granted_exclusive,
                                    const SnoopResponse &resp, Tick now)
{
    if (type == RequestType::Writeback)
        return; // Write-backs carry no region consequences.

    RegionEntry *entry = rca_.find(line_addr);
    if (!entry) {
        RegionEviction evicted;
        entry = rca_.allocate(line_addr, now, evicted);
        if (evicted.valid && evicted.lineCount > 0) {
            // Inclusion: the displaced region's lines must leave every
            // sharing core's hierarchy; dirty ones go straight to the
            // region's memory controller.
            for (const auto &flush : flush_)
                flush(evicted.regionAddr, rca_.regionBytes(),
                      evicted.memCtrl);
        }
    }

    RegionSnoopBits bits = resp.region;
    if (params_.threeStateProtocol)
        bits = threeStateBits(bits);
    const RegionState before = entry->state;
    entry->state = squash(afterBroadcast(entry->state, type,
                                         line_granted_exclusive, bits));
    entry->memCtrl = resp.memCtrl;
    rca_.touch(*entry, now);
    traceTransition(now, entry->regionAddr, before, entry->state,
                    TransitionCause::BroadcastResponse, bits,
                    entry->lineCount);
}

void
CgctController::onDirectIssue(RequestType type, Addr line_addr,
                              bool line_granted_exclusive, Tick now)
{
    RegionEntry *entry = rca_.find(line_addr);
    if (!entry) {
        // Only write-backs racing a region eviction may arrive here; the
        // flush path routes them explicitly, so this is a protocol bug.
        panic("CGCT cpu%d: direct issue without a region entry", cpu_);
    }
    const RegionState before = entry->state;
    entry->state = squash(afterSilentLocal(entry->state, type,
                                           line_granted_exclusive));
    rca_.touch(*entry, now);
    traceTransition(now, entry->regionAddr, before, entry->state,
                    TransitionCause::DirectIssue, RegionSnoopBits{},
                    entry->lineCount);
}

void
CgctController::onLocalComplete(RequestType type, Addr line_addr, Tick now)
{
    RegionEntry *entry = rca_.find(line_addr);
    if (!entry)
        panic("CGCT cpu%d: local completion without a region entry", cpu_);
    const RegionState before = entry->state;
    entry->state = squash(afterSilentLocal(entry->state, type,
                                           /*granted_exclusive=*/true));
    rca_.touch(*entry, now);
    traceTransition(now, entry->regionAddr, before, entry->state,
                    TransitionCause::LocalComplete, RegionSnoopBits{},
                    entry->lineCount);
}

void
CgctController::onLineFill(Addr line_addr)
{
    RegionEntry *entry = rca_.find(line_addr);
    if (!entry) {
        // Inclusion violation: a line was installed without region
        // permission being acquired first.
        panic("CGCT cpu%d: line fill without a region entry", cpu_);
    }
    ++entry->lineCount;
}

void
CgctController::onLineEvict(Addr line_addr)
{
    RegionEntry *entry = rca_.find(line_addr);
    if (!entry)
        return; // The region was already evicted (flush in progress).
    if (entry->lineCount == 0)
        panic("CGCT cpu%d: line-count underflow", cpu_);
    --entry->lineCount;
}

RegionSnoopBits
CgctController::externalSnoop(Addr line_addr, bool external_gets_exclusive,
                              Tick now)
{
    RegionEntry *entry = rca_.find(line_addr);
    if (!entry)
        return RegionSnoopBits{};

    if (params_.selfInvalidation && entry->lineCount == 0) {
        // No lines cached: invalidate the region so the requester can take
        // it exclusively (Section 3.1's self-invalidation).
        ++rca_.stats().selfInvalidations;
        traceTransition(now, entry->regionAddr, entry->state,
                        RegionState::Invalid,
                        TransitionCause::SelfInvalidate, RegionSnoopBits{},
                        /*line_count=*/0);
        rca_.invalidate(line_addr);
        return RegionSnoopBits{};
    }

    RegionSnoopBits bits = regionResponseBits(entry->state);
    if (params_.threeStateProtocol)
        bits = threeStateBits(bits);
    const RegionState before = entry->state;
    entry->state = squash(afterExternalSnoop(entry->state,
                                             external_gets_exclusive));
    traceTransition(now, entry->regionAddr, before, entry->state,
                    TransitionCause::ExternalSnoop, bits,
                    entry->lineCount);
    return bits;
}

RegionState
CgctController::peekState(Addr line_addr) const
{
    const RegionEntry *entry = rca_.find(line_addr);
    return entry ? entry->state : RegionState::Invalid;
}

void
CgctController::addStats(StatGroup &group) const
{
    rca_.addStats(group);
}

void
RegionTracker::serialize(Serializer &) const
{
    panic("RegionTracker: this tracker does not implement snapshot "
          "serialization");
}

void
RegionTracker::deserialize(SectionReader &)
{
    panic("RegionTracker: this tracker does not implement snapshot "
          "deserialization");
}

void
CgctController::serialize(Serializer &s) const
{
    rca_.serialize(s);
}

void
CgctController::deserialize(SectionReader &r)
{
    rca_.deserialize(r);
}

std::shared_ptr<RegionTracker>
makeTracker(CpuId cpu, const CgctParams &params, unsigned line_bytes)
{
    if (!params.enabled)
        return nullptr;
    return std::make_shared<CgctController>(cpu, params, line_bytes);
}

} // namespace cgct
