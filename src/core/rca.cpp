#include "core/rca.hpp"

#include <bit>
#include <cassert>

#include "common/log.hpp"
#include "common/trace_sink.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

RegionCoherenceArray::RegionCoherenceArray(std::uint64_t sets, unsigned ways,
                                           std::uint64_t region_bytes,
                                           bool favor_empty)
    : sets_(sets), ways_(ways), regionBytes_(region_bytes),
      regionShift_(log2i(region_bytes)), favorEmpty_(favor_empty),
      tags_(sets * ways, 0), occupied_(sets, 0), mruWay_(sets, 0),
      entries_(sets * ways)
{
    if (!isPowerOfTwo(sets))
        panic("RCA: sets must be a power of two");
    if (!isPowerOfTwo(region_bytes))
        panic("RCA: region size must be a power of two");
    if (ways == 0)
        panic("RCA: associativity must be >= 1");
    if (ways > 64)
        panic("RCA: associativity above 64 exceeds the per-set "
              "occupancy mask");
}

std::uint64_t
RegionCoherenceArray::setIndex(Addr addr) const
{
    return (addr >> regionShift_) & (sets_ - 1);
}

unsigned
RegionCoherenceArray::scanSet(std::size_t set, Addr tag) const
{
    const std::uint64_t occ = occupied_[set];
    if (!occ)
        return ways_;
    const std::size_t base = set * ways_;
    std::uint64_t match = 0;
    for (unsigned w = 0; w < ways_; ++w)
        match |= static_cast<std::uint64_t>(tags_[base + w] == tag) << w;
    match &= occ;
    if (!match)
        return ways_;
    const unsigned w = static_cast<unsigned>(std::countr_zero(match));
    return entries_[base + w].valid() ? w : ways_;
}

RegionEntry *
RegionCoherenceArray::find(Addr addr)
{
    const Addr tag = addr >> regionShift_;
    const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
    const std::size_t base = set * ways_;

    // MRU fast path: a repeated hit to the same region skips the scan.
    const unsigned hint = mruWay_[set];
    if (((occupied_[set] >> hint) & 1) && tags_[base + hint] == tag) {
        RegionEntry &entry = entries_[base + hint];
        if (entry.valid()) {
            ++stats_.hits;
            return &entry;
        }
        ++stats_.misses;
        return nullptr;
    }

    const unsigned w = scanSet(set, tag);
    if (w == ways_) {
        ++stats_.misses;
        return nullptr;
    }
    mruWay_[set] = static_cast<std::uint8_t>(w);
    ++stats_.hits;
    return &entries_[base + w];
}

const RegionEntry *
RegionCoherenceArray::find(Addr addr) const
{
    return const_cast<RegionCoherenceArray *>(this)->find(addr);
}

const RegionEntry *
RegionCoherenceArray::peekEntry(Addr addr) const
{
    const Addr tag = addr >> regionShift_;
    const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
    const unsigned w = scanSet(set, tag);
    return w == ways_ ? nullptr : &entries_[set * ways_ + w];
}

RegionEntry *
RegionCoherenceArray::allocate(Addr addr, Tick now, RegionEviction &evicted)
{
    evicted = RegionEviction{};
    const Addr tag = addr >> regionShift_;
    const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
    const std::size_t base = set * ways_;
    const std::uint64_t occ = occupied_[set];

    unsigned victim = ways_;
    unsigned empty_lru = ways_;
    unsigned any_lru = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!((occ >> w) & 1)) {
            victim = w;
            break;
        }
        const RegionEntry &e = entries_[base + w];
        if (tags_[base + w] == tag && e.valid())
            panic("RCA: allocating a region that is already present");
        if (e.lineCount == 0 &&
            (empty_lru == ways_ ||
             e.lastUse < entries_[base + empty_lru].lastUse)) {
            empty_lru = w;
        }
        if (any_lru == ways_ ||
            e.lastUse < entries_[base + any_lru].lastUse) {
            any_lru = w;
        }
    }
    if (victim == ways_)
        victim = (favorEmpty_ && empty_lru != ways_) ? empty_lru : any_lru;

    RegionEntry &entry = entries_[base + victim];
    if ((occ >> victim) & 1) {
        if (entry.valid()) {
            evicted.valid = true;
            evicted.regionAddr = entry.regionAddr;
            evicted.state = entry.state;
            evicted.lineCount = entry.lineCount;
            evicted.memCtrl = entry.memCtrl;
            stats_.lineCountSum += entry.lineCount;
            ++stats_.lineCountSamples;
            switch (entry.lineCount) {
              case 0:  ++stats_.evictedEmpty; break;
              case 1:  ++stats_.evictedOneLine; break;
              case 2:  ++stats_.evictedTwoLines; break;
              default: ++stats_.evictedMoreLines; break;
            }
            evictedLines_.record(entry.lineCount);
            lifetime_.record(static_cast<double>(now - entry.allocTick));
            CGCT_TRACE(trace_, rcaEvict(now, traceCpu_, entry.regionAddr,
                                        entry.state, entry.lineCount));
        }
    } else {
        occupied_[set] |= std::uint64_t{1} << victim;
        ++numValid_;
    }

    tags_[base + victim] = tag;
    mruWay_[set] = static_cast<std::uint8_t>(victim);
    entry = RegionEntry{};
    entry.regionAddr = tag << regionShift_;
    entry.lastUse = now;
    entry.allocTick = now;
    ++stats_.allocations;
    return &entry;
}

void
RegionCoherenceArray::invalidate(Addr addr)
{
    const Addr tag = addr >> regionShift_;
    const std::size_t set = static_cast<std::size_t>(tag & (sets_ - 1));
    const unsigned w = scanSet(set, tag);
    if (w == ways_)
        return;
    entries_[set * ways_ + w] = RegionEntry{};
    occupied_[set] &= ~(std::uint64_t{1} << w);
    --numValid_;
}

void
RegionCoherenceArray::forEachValidEntry(
    FunctionRef<void(const RegionEntry &)> fn) const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        std::uint64_t occ = occupied_[set];
        const std::size_t base = set * ways_;
        while (occ) {
            const unsigned w =
                static_cast<unsigned>(std::countr_zero(occ));
            occ &= occ - 1;
            const RegionEntry &e = entries_[base + w];
            if (e.valid())
                fn(e);
        }
    }
}

std::uint64_t
RegionCoherenceArray::countValid() const
{
#ifndef NDEBUG
    std::uint64_t scan = 0;
    for (const auto &e : entries_)
        if (e.valid())
            ++scan;
    assert(scan == numValid_ &&
           "RCA: incremental valid counter out of sync");
#endif
    return numValid_;
}

void
RegionCoherenceArray::reset()
{
    for (auto &e : entries_)
        e = RegionEntry{};
    for (auto &occ : occupied_)
        occ = 0;
    for (auto &hint : mruWay_)
        hint = 0;
    numValid_ = 0;
}

void
RegionCoherenceArray::serialize(Serializer &s) const
{
    s.u64(sets_);
    s.u32(ways_);
    s.u64(regionBytes_);
    for (Addr t : tags_)
        s.u64(t);
    for (std::uint64_t occ : occupied_)
        s.u64(occ);
    for (std::uint8_t hint : mruWay_)
        s.u8(hint);
    for (const RegionEntry &e : entries_) {
        s.u64(e.regionAddr);
        s.u8(static_cast<std::uint8_t>(e.state));
        s.u32(e.lineCount);
        s.i64(e.memCtrl);
        s.u64(e.lastUse);
        s.u64(e.allocTick);
    }
    s.u64(numValid_);
    s.u64(stats_.hits);
    s.u64(stats_.misses);
    s.u64(stats_.allocations);
    s.u64(stats_.evictedEmpty);
    s.u64(stats_.evictedOneLine);
    s.u64(stats_.evictedTwoLines);
    s.u64(stats_.evictedMoreLines);
    s.u64(stats_.inclusionFlushedLines);
    s.u64(stats_.selfInvalidations);
    s.u64(stats_.lineCountSum);
    s.u64(stats_.lineCountSamples);
    evictedLines_.serialize(s);
    lifetime_.serialize(s);
}

void
RegionCoherenceArray::deserialize(SectionReader &r)
{
    const std::uint64_t sets = r.u64();
    const std::uint32_t ways = r.u32();
    const std::uint64_t region_bytes = r.u64();
    if (sets != sets_ || ways != ways_ || region_bytes != regionBytes_)
        fatal("snapshot section '%s': RCA geometry mismatch "
              "(%llu sets x %u ways x %llu B regions stored vs "
              "%llu x %u x %llu here)",
              r.name().c_str(), static_cast<unsigned long long>(sets),
              ways, static_cast<unsigned long long>(region_bytes),
              static_cast<unsigned long long>(sets_), ways_,
              static_cast<unsigned long long>(regionBytes_));
    for (Addr &t : tags_)
        t = r.u64();
    for (std::uint64_t &occ : occupied_)
        occ = r.u64();
    for (std::uint8_t &hint : mruWay_)
        hint = r.u8();
    for (RegionEntry &e : entries_) {
        e.regionAddr = r.u64();
        e.state = static_cast<RegionState>(r.u8());
        e.lineCount = r.u32();
        e.memCtrl = static_cast<MemCtrlId>(r.i64());
        e.lastUse = r.u64();
        e.allocTick = r.u64();
    }
    numValid_ = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.allocations = r.u64();
    stats_.evictedEmpty = r.u64();
    stats_.evictedOneLine = r.u64();
    stats_.evictedTwoLines = r.u64();
    stats_.evictedMoreLines = r.u64();
    stats_.inclusionFlushedLines = r.u64();
    stats_.selfInvalidations = r.u64();
    stats_.lineCountSum = r.u64();
    stats_.lineCountSamples = r.u64();
    evictedLines_.deserialize(r);
    lifetime_.deserialize(r);
}

void
RegionCoherenceArray::addStats(StatGroup &group) const
{
    group.addScalar("rca.hits", "region lookups that hit", &stats_.hits);
    group.addScalar("rca.misses", "region lookups that missed",
                    &stats_.misses);
    group.addScalar("rca.allocations", "region entries allocated",
                    &stats_.allocations);
    group.addScalar("rca.evicted_empty",
                    "evicted regions with no cached lines",
                    &stats_.evictedEmpty);
    group.addScalar("rca.evicted_one_line",
                    "evicted regions with one cached line",
                    &stats_.evictedOneLine);
    group.addScalar("rca.evicted_two_lines",
                    "evicted regions with two cached lines",
                    &stats_.evictedTwoLines);
    group.addScalar("rca.evicted_more_lines",
                    "evicted regions with three or more cached lines",
                    &stats_.evictedMoreLines);
    group.addScalar("rca.inclusion_flushed_lines",
                    "cache lines flushed to preserve RCA inclusion",
                    &stats_.inclusionFlushedLines);
    group.addScalar("rca.self_invalidations",
                    "regions invalidated by the zero-line-count mechanism",
                    &stats_.selfInvalidations);
    group.addHistogram("rca.lines_at_eviction",
                       "lines cached per region at eviction",
                       &evictedLines_);
    group.addDistribution("rca.region_lifetime",
                          "allocation-to-eviction region lifetime (cycles)",
                          &lifetime_);
}

} // namespace cgct
