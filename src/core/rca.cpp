#include "core/rca.hpp"

#include "common/log.hpp"
#include "common/trace_sink.hpp"

namespace cgct {

RegionCoherenceArray::RegionCoherenceArray(std::uint64_t sets, unsigned ways,
                                           std::uint64_t region_bytes,
                                           bool favor_empty)
    : sets_(sets), ways_(ways), regionBytes_(region_bytes),
      regionShift_(log2i(region_bytes)), favorEmpty_(favor_empty),
      entries_(sets * ways)
{
    if (!isPowerOfTwo(sets))
        panic("RCA: sets must be a power of two");
    if (!isPowerOfTwo(region_bytes))
        panic("RCA: region size must be a power of two");
    if (ways == 0)
        panic("RCA: associativity must be >= 1");
}

std::uint64_t
RegionCoherenceArray::setIndex(Addr addr) const
{
    return (addr >> regionShift_) & (sets_ - 1);
}

RegionEntry *
RegionCoherenceArray::find(Addr addr)
{
    const Addr region = regionAlign(addr);
    RegionEntry *base = setBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid() && base[w].regionAddr == region) {
            ++stats_.hits;
            return &base[w];
        }
    }
    ++stats_.misses;
    return nullptr;
}

const RegionEntry *
RegionCoherenceArray::find(Addr addr) const
{
    return const_cast<RegionCoherenceArray *>(this)->find(addr);
}

const RegionEntry *
RegionCoherenceArray::peekEntry(Addr addr) const
{
    const Addr region = regionAlign(addr);
    const RegionEntry *base =
        &entries_[setIndex(addr) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid() && base[w].regionAddr == region)
            return &base[w];
    }
    return nullptr;
}

RegionEntry *
RegionCoherenceArray::allocate(Addr addr, Tick now, RegionEviction &evicted)
{
    evicted = RegionEviction{};
    const Addr region = regionAlign(addr);
    RegionEntry *base = setBase(setIndex(addr));

    RegionEntry *victim = nullptr;
    RegionEntry *empty_lru = nullptr;
    RegionEntry *any_lru = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        RegionEntry &e = base[w];
        if (e.valid() && e.regionAddr == region)
            panic("RCA: allocating a region that is already present");
        if (!e.valid()) {
            victim = &e;
            break;
        }
        if (e.lineCount == 0 &&
            (!empty_lru || e.lastUse < empty_lru->lastUse)) {
            empty_lru = &e;
        }
        if (!any_lru || e.lastUse < any_lru->lastUse)
            any_lru = &e;
    }
    if (!victim)
        victim = (favorEmpty_ && empty_lru) ? empty_lru : any_lru;

    if (victim->valid()) {
        evicted.valid = true;
        evicted.regionAddr = victim->regionAddr;
        evicted.state = victim->state;
        evicted.lineCount = victim->lineCount;
        evicted.memCtrl = victim->memCtrl;
        stats_.lineCountSum += victim->lineCount;
        ++stats_.lineCountSamples;
        switch (victim->lineCount) {
          case 0:  ++stats_.evictedEmpty; break;
          case 1:  ++stats_.evictedOneLine; break;
          case 2:  ++stats_.evictedTwoLines; break;
          default: ++stats_.evictedMoreLines; break;
        }
        evictedLines_.record(victim->lineCount);
        lifetime_.record(static_cast<double>(now - victim->allocTick));
        CGCT_TRACE(trace_, rcaEvict(now, traceCpu_, victim->regionAddr,
                                    victim->state, victim->lineCount));
    }

    *victim = RegionEntry{};
    victim->regionAddr = region;
    victim->lastUse = now;
    victim->allocTick = now;
    ++stats_.allocations;
    return victim;
}

void
RegionCoherenceArray::invalidate(Addr addr)
{
    const Addr region = regionAlign(addr);
    RegionEntry *base = setBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid() && base[w].regionAddr == region) {
            base[w] = RegionEntry{};
            return;
        }
    }
}

std::uint64_t
RegionCoherenceArray::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        if (e.valid())
            ++n;
    return n;
}

void
RegionCoherenceArray::reset()
{
    for (auto &e : entries_)
        e = RegionEntry{};
}

void
RegionCoherenceArray::addStats(StatGroup &group) const
{
    group.addScalar("rca.hits", "region lookups that hit", &stats_.hits);
    group.addScalar("rca.misses", "region lookups that missed",
                    &stats_.misses);
    group.addScalar("rca.allocations", "region entries allocated",
                    &stats_.allocations);
    group.addScalar("rca.evicted_empty",
                    "evicted regions with no cached lines",
                    &stats_.evictedEmpty);
    group.addScalar("rca.evicted_one_line",
                    "evicted regions with one cached line",
                    &stats_.evictedOneLine);
    group.addScalar("rca.evicted_two_lines",
                    "evicted regions with two cached lines",
                    &stats_.evictedTwoLines);
    group.addScalar("rca.evicted_more_lines",
                    "evicted regions with three or more cached lines",
                    &stats_.evictedMoreLines);
    group.addScalar("rca.inclusion_flushed_lines",
                    "cache lines flushed to preserve RCA inclusion",
                    &stats_.inclusionFlushedLines);
    group.addScalar("rca.self_invalidations",
                    "regions invalidated by the zero-line-count mechanism",
                    &stats_.selfInvalidations);
    group.addHistogram("rca.lines_at_eviction",
                       "lines cached per region at eviction",
                       &evictedLines_);
    group.addDistribution("rca.region_lifetime",
                          "allocation-to-eviction region lifetime (cycles)",
                          &lifetime_);
}

} // namespace cgct
