#include "sim/invariants.hpp"

#include <cstdio>
#include <unordered_set>

#include "common/log.hpp"
#include "core/cgct_controller.hpp"
#include "event/event_queue.hpp"
#include "interconnect/interconnect.hpp"
#include "sim/node.hpp"

namespace cgct {

namespace {

std::string
hexAddr(Addr a)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

} // namespace

InvariantChecker::InvariantChecker(const SystemConfig &config,
                                   std::vector<const Node *> nodes)
    : config_(config), nodes_(std::move(nodes))
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto *ctrl =
            dynamic_cast<const CgctController *>(nodes_[i]->tracker());
        if (!ctrl)
            continue; // Baseline / RegionScout: nothing to cross-check.
        Group *group = nullptr;
        for (Group &g : groups_) {
            if (g.ctrl == ctrl) {
                group = &g;
                break;
            }
        }
        if (!group) {
            groups_.push_back(Group{ctrl, {}});
            group = &groups_.back();
        }
        group->nodeIdx.push_back(i);
    }
}

std::string
InvariantChecker::checkCoverage(Addr addr) const
{
    if (!interconnect_ || !interconnect_->tracksPresence())
        return {};

    const std::uint64_t rbytes = config_.cgct.regionBytes;
    const Addr region = alignDown(addr, rbytes);
    const bool dir = interconnect_->tracksSharers();

    // F/G: every line the L2 arrays actually hold must be covered by
    // the topology's conservative tracking, per holder. numCpus <= 64
    // is enforced by config.validate() for tracked topologies.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        std::string err;
        nodes_[i]->l2().array().forEachLineInRegion(
            region, rbytes, [&](const CacheLine &line) {
                if (!err.empty())
                    return;
                const std::uint64_t pres =
                    interconnect_->presenceMask(line.lineAddr);
                const std::uint64_t bit = 1ULL << i;
                if (dir) {
                    const std::uint64_t cover =
                        pres | interconnect_->sharerMask(line.lineAddr);
                    if (!(cover & bit))
                        err = "cpu" + std::to_string(i) + " holds line " +
                              hexAddr(line.lineAddr) +
                              " but the directory covers neither its "
                              "sharer vector nor region presence";
                } else if (!(pres & bit)) {
                    err = "cpu" + std::to_string(i) + " holds line " +
                          hexAddr(line.lineAddr) +
                          " outside the region presence mask";
                }
            });
        if (!err.empty())
            return err;
    }

    // F: a chip with a valid RCA entry can direct-fill any line of the
    // region without a traversal, so presence must already cover every
    // core of that chip.
    for (const Group &g : groups_) {
        if (!g.ctrl->rca().peekEntry(region))
            continue;
        const std::uint64_t pres = interconnect_->presenceMask(region);
        for (std::size_t i : g.nodeIdx) {
            if (!(pres & (1ULL << i)))
                return "cpu" + std::to_string(i) +
                       "'s chip holds an RCA entry for region " +
                       hexAddr(region) +
                       " outside the region presence mask";
        }
    }
    return {};
}

std::string
InvariantChecker::checkRegion(Addr addr) const
{
    std::string cover = checkCoverage(addr);
    if (!cover.empty())
        return cover;
    if (groups_.empty())
        return {};

    const std::uint64_t rbytes = config_.cgct.regionBytes;
    const Addr region = alignDown(addr, rbytes);

    // Ground truth: what each node's L2 actually holds in the region.
    // Shared is the only line state that cannot produce dirty data; E can
    // silently become M, so it counts as modifiable.
    struct View {
        std::uint32_t lines = 0;
        bool modifiable = false;
    };
    std::vector<View> views(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i]->l2().array().forEachLineInRegion(
            region, rbytes, [&views, i](const CacheLine &line) {
                ++views[i].lines;
                if (line.state != LineState::Shared)
                    views[i].modifiable = true;
            });
    }

    for (const Group &g : groups_) {
        std::uint32_t own_lines = 0;
        bool own_modifiable = false;
        for (std::size_t i : g.nodeIdx) {
            own_lines += views[i].lines;
            own_modifiable = own_modifiable || views[i].modifiable;
        }
        std::uint32_t ext_lines = 0;
        bool ext_modifiable = false;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            bool own = false;
            for (std::size_t j : g.nodeIdx)
                own = own || j == i;
            if (own)
                continue;
            ext_lines += views[i].lines;
            ext_modifiable = ext_modifiable || views[i].modifiable;
        }

        const RegionEntry *entry = g.ctrl->rca().peekEntry(region);
        const RegionState state =
            entry ? entry->state : RegionState::Invalid;
        const std::string who =
            "cpu" + std::to_string(g.nodeIdx.front()) + " region " +
            hexAddr(region) + " (" + std::string(regionStateName(state)) +
            ")";

        // E: RCA inclusion — a cached line needs a region entry.
        if (own_lines > 0 && !entry) {
            return who + ": " + std::to_string(own_lines) +
                   " lines cached with no RCA entry";
        }
        // D: the entry's line count is exact.
        if (entry && entry->lineCount != own_lines) {
            return who + ": entry line count " +
                   std::to_string(entry->lineCount) + " but L2 holds " +
                   std::to_string(own_lines);
        }
        // A: exclusive states assert no external copies at all.
        if (isRegionExclusive(state) && ext_lines > 0) {
            return who + ": exclusive but " + std::to_string(ext_lines) +
                   " lines cached externally";
        }
        // B: externally-clean states assert external copies are
        // unmodified (and not silently modifiable).
        if (isExternallyClean(state) && ext_modifiable) {
            return who + ": externally clean but an external node holds "
                         "an E/M/O line";
        }
        // C: locally-clean states assert this chip's copies are
        // unmodified (and not silently modifiable).
        if (state != RegionState::Invalid && !isLocallyDirty(state) &&
            own_modifiable) {
            return who + ": locally clean but holds an E/M/O line";
        }
    }
    return {};
}

std::string
InvariantChecker::checkAll() const
{
    const bool tracked =
        interconnect_ && interconnect_->tracksPresence();
    if (groups_.empty() && !tracked)
        return {};

    const std::uint64_t rbytes = config_.cgct.regionBytes;
    std::unordered_set<Addr> regions;
    for (const Group &g : groups_) {
        g.ctrl->rca().forEachValidEntry(
            [&regions](const RegionEntry &entry) {
                regions.insert(entry.regionAddr);
            });
    }
    for (const Node *node : nodes_) {
        node->l2().array().forEachValidLine(
            [&regions, rbytes](const CacheLine &line) {
                regions.insert(alignDown(line.lineAddr, rbytes));
            });
    }

    for (Addr region : regions) {
        std::string err = checkRegion(region);
        if (!err.empty())
            return err;
    }
    return {};
}

void
InvariantChecker::noteCheckpoint(const std::string &path, Tick tick)
{
    lastCheckpointPath_ = path;
    lastCheckpointTick_ = tick;
    haveCheckpoint_ = true;
}

void
InvariantChecker::onTransition(Addr addr, const char *site)
{
    ++checksRun_;
    const std::string err = checkRegion(addr);
    if (err.empty())
        return;
    const unsigned long long tick =
        eq_ ? static_cast<unsigned long long>(eq_->now()) : 0ULL;
    if (haveCheckpoint_) {
        fatal("region invariant violated after %s at tick %llu: %s\n"
              "  nearest checkpoint: %s (tick %llu) — replay with "
              "`cgct_sim --restore %s --trace out.jsonl "
              "--check-invariants`",
              site, tick, err.c_str(), lastCheckpointPath_.c_str(),
              static_cast<unsigned long long>(lastCheckpointTick_),
              lastCheckpointPath_.c_str());
    }
    fatal("region invariant violated after %s at tick %llu: %s", site,
          tick, err.c_str());
}

} // namespace cgct
