#include "sim/node.hpp"

#include <string>
#include <unordered_map>

#include "common/log.hpp"
#include "event/pdes.hpp"
#include "sim/invariants.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

void
Node::setTraceSink(TraceSink *sink)
{
    trace_ = sink;
    if (tracker_)
        tracker_->setTraceSink(sink);
}

Node::Node(CpuId cpu, const SystemConfig &config, EventQueue &eq,
           Interconnect &bus,
           DataNetwork &data_net, const AddressMap &map,
           std::vector<MemoryController *> mem_ctrls,
           std::shared_ptr<RegionTracker> tracker)
    : cpu_(cpu), config_(config), eq_(eq), bus_(bus), dataNet_(data_net),
      map_(map), memCtrls_(std::move(mem_ctrls)),
      tracker_(std::move(tracker)),
      l1i_("l1i", config.l1i), l1d_("l1d", config.l1d),
      l2_("l2", config.l2), mshr_(config.core.maxOutstandingMisses),
      prefetcher_(config.prefetch, config.l2.lineBytes),
      mshrCtx_(config.core.maxOutstandingMisses)
{
    if (tracker_) {
        tracker_->setFlushHandler(
            [this](Addr region, std::uint64_t bytes, MemCtrlId mc) {
                flushRegion(region, bytes, mc, eq_.now());
            });
    }
}

bool
Node::access(CpuOpKind kind, Addr addr, Tick now, Tick &ready_out,
             CompletionFn &&done)
{
    switch (kind) {
      case CpuOpKind::Ifetch:
        if (CacheLine *line = l1i_.probe(addr, now)) {
            ready_out = std::max(now + l1i_.latency(), line->readyTick);
            return true;
        }
        return accessL2(kind, addr, now, ready_out, std::move(done));

      case CpuOpKind::Load:
        if (CacheLine *line = l1d_.probe(addr, now)) {
            ready_out = std::max(now + l1d_.latency(), line->readyTick);
            return true;
        }
        return accessL2(kind, addr, now, ready_out, std::move(done));

      case CpuOpKind::Store:
        if (CacheLine *line = l1d_.probe(addr, now)) {
            if (line->state == LineState::Modified) {
                ready_out = std::max(now + l1d_.latency(), line->readyTick);
                return true;
            }
            // L1 hit on a shared copy: the L2 (inclusion) decides whether
            // the store may proceed silently.
            CacheLine *l2line = l2_.peekMutable(addr);
            if (l2line && isWritable(l2line->state)) {
                l2line->state = LineState::Modified;
                line->state = LineState::Modified;
                ready_out = std::max(now + l1d_.latency(), line->readyTick);
                return true;
            }
        }
        return accessL2(kind, addr, now, ready_out, std::move(done));

      case CpuOpKind::Dcbz:
      case CpuOpKind::Dcbf:
      case CpuOpKind::Dcbi:
        return accessL2(kind, addr, now, ready_out, std::move(done));
    }
    panic("Node::access: unknown op kind");
}

bool
Node::accessL2(CpuOpKind kind, Addr addr, Tick now, Tick &ready_out,
               CompletionFn &&done)
{
    // The snoops this node receives occupy its L2 tag port; local
    // accesses wait behind them (the contention CGCT relieves).
    if (l2TagBusy_ > now) {
        stats_.tagWaitCycles += l2TagBusy_ - now;
        now = l2TagBusy_;
    }

    const Addr line_addr = l2_.lineAlign(addr);

    // Merge with an in-flight transaction for the same line: wait for it
    // to resolve, then replay the access (it usually hits afterwards).
    if (mshr_.contains(line_addr)) {
        mshr_.promoteToDemand(line_addr);
        waiterPool_.push(waiterListFor(line_addr),
                         Waiter{std::move(done), addr, kind,
                                /*fill=*/false, /*replay=*/true});
        return false;
    }

    CacheLine *line = l2_.probe(addr, now);
    const bool was_miss = line == nullptr;
    const bool is_store_like = kind == CpuOpKind::Store;

    if (kind == CpuOpKind::Ifetch || kind == CpuOpKind::Load ||
        kind == CpuOpKind::Store) {
        maybePrefetch(line_addr, is_store_like, was_miss, now);
    }

    switch (kind) {
      case CpuOpKind::Ifetch:
      case CpuOpKind::Load:
        if (line) {
            fillL1(kind, addr, now, line->readyTick);
            ready_out = std::max(now + l2_.latency(), line->readyTick);
            return true;
        }
        ++stats_.demandMisses;
        issueSystemRequest(kind == CpuOpKind::Ifetch
                               ? RequestType::Ifetch
                               : RequestType::Read,
                           line_addr, now,
                           Completion{std::move(done), addr, kind,
                                      /*fill=*/true},
                           /*is_prefetch=*/false);
        return false;

      case CpuOpKind::Store:
        if (line) {
            if (isWritable(line->state)) {
                line->state = LineState::Modified;
                fillL1(kind, addr, now, line->readyTick);
                ready_out = std::max(now + l2_.latency(), line->readyTick);
                return true;
            }
            // Shared or Owned: upgrade to a modifiable copy.
            issueSystemRequest(RequestType::Upgrade, line_addr, now,
                               Completion{std::move(done), addr, kind,
                                          /*fill=*/true},
                               /*is_prefetch=*/false);
            return false;
        }
        ++stats_.demandMisses;
        issueSystemRequest(RequestType::ReadExclusive, line_addr, now,
                           Completion{std::move(done), addr, kind,
                                      /*fill=*/true},
                           /*is_prefetch=*/false);
        return false;

      case CpuOpKind::Dcbz:
        if (line && isWritable(line->state)) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(addr))
                l1line->state = LineState::Modified;
            ready_out = now + l2_.latency();
            return true;
        }
        issueSystemRequest(RequestType::Dcbz, line_addr, now,
                           Completion{std::move(done), addr, kind,
                                      /*fill=*/false},
                           /*is_prefetch=*/false);
        return false;

      case CpuOpKind::Dcbf:
        issueSystemRequest(RequestType::Dcbf, line_addr, now,
                           Completion{std::move(done), addr, kind,
                                      /*fill=*/false},
                           /*is_prefetch=*/false);
        return false;

      case CpuOpKind::Dcbi:
        issueSystemRequest(RequestType::Dcbi, line_addr, now,
                           Completion{std::move(done), addr, kind,
                                      /*fill=*/false},
                           /*is_prefetch=*/false);
        return false;
    }
    panic("Node::accessL2: unknown op kind");
}

void
Node::issueSystemRequest(RequestType type, Addr line_addr, Tick now,
                         Completion &&c, bool is_prefetch)
{
    const bool needs_mshr = type != RequestType::Writeback;
    if (needs_mshr) {
        if (mshr_.contains(line_addr)) {
            // Only prefetches race their own demand stream here.
            if (is_prefetch)
                return;
            panic("cpu%d: duplicate in-flight request for line %llx",
                  cpu_, static_cast<unsigned long long>(line_addr));
        }
        if (mshr_.full()) {
            if (is_prefetch)
                return; // Prefetches never queue for MSHRs.
            pendingPool_.push(pendingMisses_,
                              PendingMiss{type, line_addr, std::move(c),
                                          is_prefetch});
            return;
        }
        const std::uint32_t slot = mshr_.allocate(line_addr, is_prefetch);
        mshrCtx_[slot] = std::move(c);
    }
    dispatchSystemRequest(type, line_addr, now, is_prefetch);
}

void
Node::dispatchSystemRequest(RequestType type, Addr line_addr, Tick now,
                            bool is_prefetch)
{
    // Merge with an in-flight region acquisition: the first broadcast to
    // an Invalid region fetches the region snoop response; later requests
    // to the same region wait for it rather than broadcasting too. The
    // waiter's Completion stays in its MSHR slot.
    if (tracker_ && type != RequestType::Writeback) {
        const Addr region = alignDown(line_addr, config_.cgct.regionBytes);
        if (auto *list = pendingRegionAcq_.find(region)) {
            regionWaiterPool_.push(
                *list, RegionWaiter{type, line_addr, is_prefetch, now});
            return;
        }
    }

    ++stats_.requestsTotal;
    const auto cat = static_cast<std::size_t>(categoryOf(type));

    RouteDecision route;
    if (tracker_)
        route = tracker_->route(type, line_addr, now);
    traceRouteDecision(trace_, now, cpu_, type, line_addr, route.kind,
                       route.state);

    if (tracker_ && !drainingRegion_ && type != RequestType::Writeback &&
        route.kind == RouteKind::Broadcast &&
        tracker_->peekState(line_addr) == RegionState::Invalid) {
        // This broadcast acquires the region; queue followers behind it.
        pendingRegionAcq_.insert(
            alignDown(line_addr, config_.cgct.regionBytes));
    }

    switch (route.kind) {
      case RouteKind::Broadcast: {
        ++stats_.broadcasts;
        ++stats_.broadcastsByCat[cat];
        SystemRequest req;
        req.cpu = cpu_;
        req.type = type;
        req.lineAddr = line_addr;
        req.isPrefetch = is_prefetch;
        // The bus orders requests at their issue tick; the core's local
        // clock may be ahead of global event time, so enter the bus then.
        // Sharded runs defer the bus entry to the quantum barrier
        // (docs/PDES.md); the enqueue event itself still executes on
        // this node's shard at the same tick.
        const Tick when = std::max(now, eq_.now());
        eq_.schedule(when,
                     [this, req, issued = now] {
                         if (pdes_)
                             pdes_->defer(pdesShard_, this, req, issued,
                                          eq_.now());
                         else
                             postBroadcast(req, issued, eq_.now());
                     },
                     EventPriority::Cpu);
        break;
      }

      case RouteKind::Direct: {
        ++stats_.directs;
        ++stats_.directsByCat[cat];
        MemCtrlId mc = route.memCtrl;
        if (mc == kInvalidMemCtrl) {
            // Trackers without a memory-controller index (RegionScout)
            // rely on the fabric to route the packet.
            mc = map_.controllerOf(line_addr);
        }
        issueDirect(type, line_addr, mc, now, is_prefetch);
        break;
      }

      case RouteKind::LocalComplete:
        ++stats_.localCompletes;
        ++stats_.localByCat[cat];
        completeLocally(type, line_addr, now);
        break;
    }
}

void
Node::postBroadcast(const SystemRequest &req, Tick issued, Tick enq)
{
    Interconnect::ResponseFn fn = [this, req, issued](const SnoopResponse &resp,
                                             Tick data_ready) {
        handleBroadcastResponse(req.type, req.lineAddr, resp, data_ready);
        if (!req.isPrefetch && req.type != RequestType::Writeback)
            noteMissLatency(issued, data_ready);
    };
    if (pdes_)
        bus_.broadcastAt(req, std::move(fn), enq);
    else
        bus_.broadcast(req, std::move(fn));
}

void
Node::issueDirect(RequestType type, Addr line_addr, MemCtrlId mc, Tick now,
                  bool is_prefetch)
{
    const Distance dist = map_.distanceToCtrl(cpu_, mc);
    MemoryController *ctrl = memCtrls_[static_cast<unsigned>(mc)];
    const Tick arrival = now + config_.interconnect.directLatency(dist);

    if (type == RequestType::Writeback) {
        ctrl->acceptWriteback(arrival);
        return;
    }

    // The region permission proves what copy we can take without asking.
    const RegionState region_state =
        tracker_ ? tracker_->peekState(line_addr) : RegionState::Invalid;
    const bool region_exclusive = isRegionExclusive(region_state);
    const LineState granted =
        grantedState(type, /*other_had_copy=*/!region_exclusive);

    tracker_->onDirectIssue(type, line_addr,
                            granted == LineState::Exclusive ||
                                granted == LineState::Modified,
                            now);

    const Tick from_mem = ctrl->accessDirect(arrival);
    const Tick data_ready = dataNet_.deliver(cpu_, from_mem, dist,
                                             config_.l2.lineBytes);

    installL2Line(line_addr, granted, now, data_ready);
    if (checker_)
        checker_->onTransition(line_addr, "direct_issue");

    // Backdated dispatches (speculative fetches resolved by a region
    // acquisition) may complete logically in the past; deliver them now.
    eq_.schedule(std::max(data_ready, eq_.now()),
                 [this, line_addr, issued = now, is_prefetch] {
                     Completion c = grabMshrCtx(line_addr);
                     releaseMshr(line_addr);
                     drainFillWaiters(line_addr, eq_.now());
                     if (!is_prefetch)
                         noteMissLatency(issued, eq_.now());
                     runCompletion(c, eq_.now());
                 },
                 EventPriority::Data);
}

void
Node::completeLocally(RequestType type, Addr line_addr, Tick now)
{
    tracker_->onLocalComplete(type, line_addr, now);
    const Tick ready = now + l2_.latency();

    switch (type) {
      case RequestType::Upgrade: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            // The line was displaced between the store probe and now.
            ++stats_.upgradeRaces;
            installL2Line(line_addr, LineState::Modified, now, ready);
        }
        break;
      }

      case RequestType::Dcbz: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            installL2Line(line_addr, LineState::Modified, now, ready);
        }
        break;
      }

      case RequestType::Dcbf: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            const bool dirty = isDirty(line->state);
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
            if (dirty)
                issueWriteback(line_addr, now);
        }
        break;
      }

      case RequestType::Dcbi: {
        if (l2_.peek(line_addr)) {
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
        }
        break;
      }

      default:
        panic("cpu%d: request type %d cannot complete locally", cpu_,
              static_cast<int>(type));
    }

    if (checker_)
        checker_->onTransition(line_addr, "local_complete");

    Completion c = grabMshrCtx(line_addr);
    releaseMshr(line_addr);
    if (c.done || c.fill) {
        // Defer the completion so callers never observe their callback
        // firing inside the access() call itself. Backdated dispatches
        // may have a logical completion in the past; deliver them now.
        eq_.schedule(std::max(ready, eq_.now()),
                     [this, c = std::move(c), ready]() mutable {
                         runCompletion(c, ready);
                     },
                     EventPriority::Data);
    }
}

void
Node::handleBroadcastResponse(RequestType type, Addr line_addr,
                              const SnoopResponse &resp, Tick data_ready)
{
    const Tick now = eq_.now();
    const LineState granted = grantedState(type, resp.line.anyCopy);
    const bool granted_exclusive = granted == LineState::Exclusive ||
                                   granted == LineState::Modified;

    if (tracker_)
        tracker_->onBroadcastResponse(type, line_addr, granted_exclusive,
                                      resp, now);

    // The region snoop response arrived: release any requests that were
    // waiting behind this region acquisition. They re-route with the
    // fresh region state (usually direct or local now).
    if (tracker_ && type != RequestType::Writeback) {
        const Addr region = alignDown(line_addr, config_.cgct.regionBytes);
        PoolFifo<RegionWaiter>::List waiting;
        if (pendingRegionAcq_.take(region, waiting)) {
            drainingRegion_ = true;
            RegionWaiter p;
            while (regionWaiterPool_.pop(waiting, p)) {
                // Requests that can now go direct had their memory fetch
                // started speculatively alongside the acquisition
                // broadcast, so they dispatch with their original
                // timestamp; requests that must broadcast pay full price
                // from now (the bus schedules them at >= now anyway).
                dispatchSystemRequest(p.type, p.lineAddr, p.queuedAt,
                                      p.isPrefetch);
            }
            drainingRegion_ = false;
        }
    }

    switch (type) {
      case RequestType::Read:
      case RequestType::ReadExclusive:
      case RequestType::Ifetch:
      case RequestType::Prefetch:
      case RequestType::PrefetchExclusive:
        installL2Line(line_addr, granted, now, data_ready);
        break;

      case RequestType::Upgrade: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            // An earlier-ordered external request took the line away; the
            // upgrade degenerates into a refetch. The data latency is
            // approximated by the broadcast that already ran.
            ++stats_.upgradeRaces;
            installL2Line(line_addr, LineState::Modified, now, data_ready);
        }
        break;
      }

      case RequestType::Dcbz: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            installL2Line(line_addr, LineState::Modified, now, data_ready);
        }
        break;
      }

      case RequestType::Dcbf:
      case RequestType::Dcbi: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            const bool dirty = isDirty(line->state) &&
                               type == RequestType::Dcbf;
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
            if (dirty)
                issueWriteback(line_addr, now);
        }
        break;
      }

      case RequestType::Writeback:
        break; // The bus already sank the data into the controller.
    }

    const bool needs_mshr = type != RequestType::Writeback;
    if (data_ready > now) {
        eq_.schedule(data_ready,
                     [this, line_addr, needs_mshr, data_ready] {
                         finishRequest(line_addr, needs_mshr, data_ready);
                     },
                     EventPriority::Data);
    } else {
        finishRequest(line_addr, needs_mshr, now);
    }
}

Node::Completion
Node::grabMshrCtx(Addr line_addr)
{
    Completion c;
    const std::uint32_t slot = mshr_.slotOf(line_addr);
    if (slot != MshrFile::kNoSlot) {
        c = std::move(mshrCtx_[slot]);
        mshrCtx_[slot] = Completion{};
    }
    return c;
}

void
Node::runCompletion(Completion &c, Tick ready)
{
    if (c.fill)
        fillL1(c.kind, c.addr, ready, ready);
    if (c.done)
        c.done(ready);
}

void
Node::finishRequest(Addr line_addr, bool needs_mshr, Tick ready)
{
    Completion c;
    if (needs_mshr) {
        // Grab the context before releasing: the release may start a
        // queued miss that claims (and overwrites) this very slot.
        c = grabMshrCtx(line_addr);
        releaseMshr(line_addr);
    }
    drainFillWaiters(line_addr, ready);
    runCompletion(c, ready);
}

void
Node::drainFillWaiters(Addr line_addr, Tick ready)
{
    PoolFifo<Waiter>::List list;
    if (!fillWaiters_.take(line_addr, list))
        return;
    // The list was moved out of the table, so re-registrations from the
    // replays below land on a fresh list for the next fill.
    Waiter w;
    while (waiterPool_.pop(list, w)) {
        if (w.replay) {
            Tick r;
            if (access(w.kind, w.addr, ready, r, std::move(w.done)))
                w.done(r);
        } else {
            if (w.fill)
                fillL1(w.kind, w.addr, ready, ready);
            if (w.done)
                w.done(ready);
        }
    }
}

PoolFifo<Node::Waiter>::List &
Node::waiterListFor(Addr line_addr)
{
    if (auto *list = fillWaiters_.find(line_addr))
        return *list;
    return fillWaiters_.insert(line_addr);
}

void
Node::installL2Line(Addr line_addr, LineState state, Tick now, Tick ready)
{
    Eviction evicted;
    l2_.fill(line_addr, state, now, ready, evicted);
    if (evicted.valid)
        evictL2Line(evicted.lineAddr, evicted.state, now);
    if (tracker_)
        tracker_->onLineFill(line_addr);
}

void
Node::fillL1(CpuOpKind kind, Addr addr, Tick now, Tick ready)
{
    // The L2 line may already have been displaced (or invalidated) between
    // the fill and this completion; skip the L1 install to keep inclusion.
    const CacheLine *l2line = l2_.peek(addr);
    if (!l2line)
        return;
    Cache &l1 = (kind == CpuOpKind::Ifetch) ? l1i_ : l1d_;
    // The L1 copy takes the L2's *current* permission: an external snoop
    // may have downgraded the line (e.g. M -> O) between the grant and
    // this completion, and a Modified L1 copy over a non-Modified L2 line
    // would enable silent stores that remote sharers never observe.
    const LineState state = (kind == CpuOpKind::Store &&
                             l2line->state == LineState::Modified)
                                ? LineState::Modified
                                : LineState::Shared;
    if (CacheLine *line = l1.peekMutable(addr)) {
        if (state == LineState::Modified)
            line->state = LineState::Modified;
        if (ready > line->readyTick)
            line->readyTick = ready;
        l1.array().touch(*line, now);
        return;
    }
    Eviction evicted;
    l1.fill(addr, state, now, ready, evicted);
    if (evicted.valid && isDirty(evicted.state)) {
        // Fold the dirty L1 line back into the (inclusive) L2.
        if (CacheLine *l2line = l2_.peekMutable(evicted.lineAddr))
            l2line->state = LineState::Modified;
    }
}

void
Node::evictL2Line(Addr line_addr, LineState state, Tick now)
{
    // L1 copies must go (inclusion). A dirty L1 copy implies the L2 line
    // was already Modified (state is folded through on L1 fills).
    l1d_.invalidateLine(line_addr);
    l1i_.invalidateLine(line_addr);
    if (tracker_)
        tracker_->onLineEvict(line_addr);
    if (isDirty(state))
        issueWriteback(line_addr, now);
}

void
Node::issueWriteback(Addr line_addr, Tick now)
{
    ++stats_.writebacksIssued;
    issueSystemRequest(RequestType::Writeback, line_addr, now,
                       Completion{}, /*is_prefetch=*/false);
}

void
Node::flushRegion(Addr region_addr, std::uint64_t region_bytes,
                  MemCtrlId mc, Tick now)
{
    // Collect the region's lines first: invalidation mutates the array.
    flushScratch_.clear();
    l2_.array().forEachLineInRegion(region_addr, region_bytes,
                                    [this](CacheLine &line) {
                                        flushScratch_.emplace_back(
                                            line.lineAddr, line.state);
                                    });
    for (const auto &[addr, state] : flushScratch_) {
        l1d_.invalidateLine(addr);
        l1i_.invalidateLine(addr);
        l2_.invalidateLine(addr);
        ++stats_.inclusionWritebacks;
        if (isDirty(state)) {
            // The dying region entry still knows its memory controller;
            // the write-back goes directly there.
            ++stats_.requestsTotal;
            ++stats_.writebacksIssued;
            ++stats_.directs;
            ++stats_.directsByCat[static_cast<std::size_t>(
                RequestCategory::Writeback)];
            const Distance dist = map_.distanceToCtrl(cpu_, mc);
            const Tick arrival =
                now + config_.interconnect.directLatency(dist);
            memCtrls_[static_cast<unsigned>(mc)]->acceptWriteback(arrival);
        }
    }
    if (checker_)
        checker_->onTransition(region_addr, "region_flush");
}

void
Node::maybePrefetch(Addr line_addr, bool is_store, bool was_miss, Tick now)
{
    prefetchScratch_.clear();
    prefetcher_.observe(line_addr, is_store, was_miss, prefetchScratch_);
    for (const PrefetchCandidate &c : prefetchScratch_) {
        if (l2_.peek(c.lineAddr) || mshr_.contains(c.lineAddr))
            continue;
        // Keep headroom for demand misses.
        if (mshr_.inFlight() + 2 >= mshr_.capacity())
            break;
        if (tracker_ && config_.cgct.regionPrefetchHints) {
            // Section 6 extension: externally-dirty regions are poor
            // prefetch targets (the data would likely be stale or stolen).
            if (isExternallyDirty(tracker_->peekState(c.lineAddr)))
                continue;
        }
        ++stats_.prefetchesIssued;
        issueSystemRequest(c.exclusive ? RequestType::PrefetchExclusive
                                       : RequestType::Prefetch,
                           c.lineAddr, now, Completion{},
                           /*is_prefetch=*/true);
    }
}

void
Node::releaseMshr(Addr line_addr)
{
    if (!mshr_.release(line_addr))
        return;
    PendingMiss p;
    while (!mshr_.full() && pendingPool_.pop(pendingMisses_, p)) {
        const Tick now = eq_.now();
        // The world may have changed while the miss was queued.
        if (CacheLine *line = l2_.peekMutable(p.lineAddr)) {
            const bool store_like = wantsExclusive(p.type);
            if (!store_like || isWritable(line->state)) {
                if (store_like)
                    line->state = LineState::Modified;
                runCompletion(p.c, std::max(now + l2_.latency(),
                                            line->readyTick));
                continue;
            }
        }
        if (mshr_.contains(p.lineAddr)) {
            waiterPool_.push(waiterListFor(p.lineAddr),
                             Waiter{std::move(p.c.done), p.c.addr,
                                    p.c.kind, p.c.fill,
                                    /*replay=*/false});
            continue;
        }
        const std::uint32_t slot = mshr_.allocate(p.lineAddr, p.isPrefetch);
        mshrCtx_[slot] = std::move(p.c);
        dispatchSystemRequest(p.type, p.lineAddr, now, p.isPrefetch);
    }
}

LineSnoopOutcome
Node::snoopLine(const SystemRequest &req)
{
    // The external lookup occupies this node's L2 tag port.
    ++stats_.snoopsReceived;
    const Tick now = eq_.now();
    l2TagBusy_ = std::max(l2TagBusy_, now) +
                 config_.interconnect.snoopTagOccupancy;

    const SnoopKind kind = snoopKindOf(req.type);
    CacheLine *line = l2_.peekMutable(req.lineAddr);
    const LineSnoopOutcome out =
        applyLineSnoop(line ? line->state : LineState::Invalid, kind);
    if (line && out.next != out.before) {
        if (out.next == LineState::Invalid) {
            l1d_.invalidateLine(req.lineAddr);
            l1i_.invalidateLine(req.lineAddr);
            l2_.invalidateLine(req.lineAddr);
            if (tracker_)
                tracker_->onLineEvict(req.lineAddr);
        } else {
            line->state = out.next;
            // The L1 keeps at most a shared copy after any snoop hit.
            if (CacheLine *l1line = l1d_.peekMutable(req.lineAddr))
                l1line->state = LineState::Shared;
        }
    }
    return out;
}

RegionSnoopBits
Node::snoopRegion(const SystemRequest &req, bool requester_gets_exclusive)
{
    if (!tracker_)
        return RegionSnoopBits{};
    // With one RCA per chip (Section 3.2), a sibling core's request is
    // not external to this tracker: it neither reports nor downgrades.
    if (config_.cgct.sharedPerChip && req.cpu >= 0 &&
        static_cast<unsigned>(req.cpu) < config_.topology.numCpus &&
        config_.topology.chipOfCpu(req.cpu) ==
            config_.topology.chipOfCpu(cpu_)) {
        return RegionSnoopBits{};
    }
    return tracker_->externalSnoop(req.lineAddr, requester_gets_exclusive,
                                   eq_.now());
}

// ---------------------------------------------------------------------------
// Functional warming (docs/SAMPLING.md). Each warm* function is the
// architectural mirror of its timing twin above: identical cache, MOESI
// and region-tracker transitions, applied synchronously at the warm tick
// with no events, no bus arbitration, no MSHR occupancy and no latency.
// Keep the two in lockstep when changing either.

void
Node::warmAccess(CpuOpKind kind, Addr addr, Tick now)
{
    if (!warmPeers_)
        panic("cpu%d: warmAccess without setWarmPeers", cpu_);

    switch (kind) {
      case CpuOpKind::Ifetch:
        if (l1i_.probe(addr, now))
            return;
        warmL2Access(kind, addr, now);
        return;

      case CpuOpKind::Load:
        if (l1d_.probe(addr, now))
            return;
        warmL2Access(kind, addr, now);
        return;

      case CpuOpKind::Store:
        if (CacheLine *line = l1d_.probe(addr, now)) {
            if (line->state == LineState::Modified)
                return;
            CacheLine *l2line = l2_.peekMutable(addr);
            if (l2line && isWritable(l2line->state)) {
                l2line->state = LineState::Modified;
                line->state = LineState::Modified;
                return;
            }
        }
        warmL2Access(kind, addr, now);
        return;

      case CpuOpKind::Dcbz:
      case CpuOpKind::Dcbf:
      case CpuOpKind::Dcbi:
        warmL2Access(kind, addr, now);
        return;
    }
    panic("Node::warmAccess: unknown op kind");
}

void
Node::warmL2Access(CpuOpKind kind, Addr addr, Tick now)
{
    const Addr line_addr = l2_.lineAlign(addr);
    CacheLine *line = l2_.probe(addr, now);
    const bool was_miss = line == nullptr;
    const bool is_store_like = kind == CpuOpKind::Store;

    if (kind == CpuOpKind::Ifetch || kind == CpuOpKind::Load ||
        kind == CpuOpKind::Store) {
        warmMaybePrefetch(line_addr, is_store_like, was_miss, now);
        // The prefetcher may have filled (or displaced) the line.
        line = l2_.probe(addr, now);
    }

    switch (kind) {
      case CpuOpKind::Ifetch:
      case CpuOpKind::Load:
        if (line) {
            fillL1(kind, addr, now, now);
            return;
        }
        ++stats_.demandMisses;
        warmRequest(kind == CpuOpKind::Ifetch ? RequestType::Ifetch
                                              : RequestType::Read,
                    line_addr, now, /*is_prefetch=*/false);
        fillL1(kind, addr, now, now);
        return;

      case CpuOpKind::Store:
        if (line) {
            if (isWritable(line->state)) {
                line->state = LineState::Modified;
                fillL1(kind, addr, now, now);
                return;
            }
            warmRequest(RequestType::Upgrade, line_addr, now,
                        /*is_prefetch=*/false);
            fillL1(kind, addr, now, now);
            return;
        }
        ++stats_.demandMisses;
        warmRequest(RequestType::ReadExclusive, line_addr, now,
                    /*is_prefetch=*/false);
        fillL1(kind, addr, now, now);
        return;

      case CpuOpKind::Dcbz:
        if (line && isWritable(line->state)) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(addr))
                l1line->state = LineState::Modified;
            return;
        }
        warmRequest(RequestType::Dcbz, line_addr, now,
                    /*is_prefetch=*/false);
        return;

      case CpuOpKind::Dcbf:
        warmRequest(RequestType::Dcbf, line_addr, now,
                    /*is_prefetch=*/false);
        return;

      case CpuOpKind::Dcbi:
        warmRequest(RequestType::Dcbi, line_addr, now,
                    /*is_prefetch=*/false);
        return;
    }
    panic("Node::warmL2Access: unknown op kind");
}

void
Node::warmRequest(RequestType type, Addr line_addr, Tick now,
                  bool is_prefetch)
{
    ++stats_.requestsTotal;
    const auto cat = static_cast<std::size_t>(categoryOf(type));

    RouteDecision route;
    if (tracker_)
        route = tracker_->route(type, line_addr, now);

    switch (route.kind) {
      case RouteKind::Broadcast:
        ++stats_.broadcasts;
        ++stats_.broadcastsByCat[cat];
        warmBroadcast(type, line_addr, now, is_prefetch);
        break;

      case RouteKind::Direct: {
        ++stats_.directs;
        ++stats_.directsByCat[cat];
        MemCtrlId mc = route.memCtrl;
        if (mc == kInvalidMemCtrl)
            mc = map_.controllerOf(line_addr);
        warmDirect(type, line_addr, mc, now);
        break;
      }

      case RouteKind::LocalComplete:
        ++stats_.localCompletes;
        ++stats_.localByCat[cat];
        warmLocalComplete(type, line_addr, now);
        break;
    }
}

void
Node::warmBroadcast(RequestType type, Addr line_addr, Tick now,
                    bool is_prefetch)
{
    SystemRequest req;
    req.cpu = cpu_;
    req.type = type;
    req.lineAddr = line_addr;
    req.isPrefetch = is_prefetch;

    // Mirror of Bus::resolve, minus the oracle (measurement-only, reset
    // at every window start), timing and data movement.
    SnoopResponse resp;
    for (Node *peer : *warmPeers_) {
        if (peer->cpuId() == cpu_)
            continue;
        resp.line.fold(peer->cpuId(), peer->warmSnoopLine(req));
    }

    const bool gets_exclusive =
        wantsExclusive(type) || isDcbOp(type) ||
        ((type == RequestType::Read || type == RequestType::Prefetch) &&
         !resp.line.anyCopy);

    // Topology-private tracking state (presence / sharer maps) follows
    // the warmed caches just as it would follow a timed resolution.
    bus_.warmNote(req, gets_exclusive);

    if (type != RequestType::Writeback) {
        for (Node *peer : *warmPeers_) {
            if (peer->cpuId() == cpu_)
                continue;
            resp.region.merge(
                peer->warmSnoopRegion(req, gets_exclusive, now));
        }
    }
    resp.memCtrl = map_.controllerOf(line_addr);

    // Mirror of handleBroadcastResponse: requester-side state changes.
    const LineState granted = grantedState(type, resp.line.anyCopy);
    const bool granted_exclusive = granted == LineState::Exclusive ||
                                   granted == LineState::Modified;
    if (tracker_)
        tracker_->onBroadcastResponse(type, line_addr, granted_exclusive,
                                      resp, now);

    switch (type) {
      case RequestType::Read:
      case RequestType::ReadExclusive:
      case RequestType::Ifetch:
      case RequestType::Prefetch:
      case RequestType::PrefetchExclusive:
        warmInstallL2Line(line_addr, granted, now);
        break;

      case RequestType::Upgrade: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            ++stats_.upgradeRaces;
            warmInstallL2Line(line_addr, LineState::Modified, now);
        }
        break;
      }

      case RequestType::Dcbz: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            warmInstallL2Line(line_addr, LineState::Modified, now);
        }
        break;
      }

      case RequestType::Dcbf:
      case RequestType::Dcbi: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            const bool dirty = isDirty(line->state) &&
                               type == RequestType::Dcbf;
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
            if (dirty)
                warmWriteback(line_addr, now);
        }
        break;
      }

      case RequestType::Writeback:
        break;
    }

    if (checker_)
        checker_->onTransition(line_addr, "warm_broadcast");
}

void
Node::warmDirect(RequestType type, Addr line_addr, MemCtrlId mc, Tick now)
{
    (void)mc; // Data movement and controller timing are skipped.
    if (type == RequestType::Writeback)
        return;

    const RegionState region_state =
        tracker_ ? tracker_->peekState(line_addr) : RegionState::Invalid;
    const bool region_exclusive = isRegionExclusive(region_state);
    const LineState granted =
        grantedState(type, /*other_had_copy=*/!region_exclusive);

    tracker_->onDirectIssue(type, line_addr,
                            granted == LineState::Exclusive ||
                                granted == LineState::Modified,
                            now);
    warmInstallL2Line(line_addr, granted, now);
    if (checker_)
        checker_->onTransition(line_addr, "warm_direct");
}

void
Node::warmLocalComplete(RequestType type, Addr line_addr, Tick now)
{
    tracker_->onLocalComplete(type, line_addr, now);

    switch (type) {
      case RequestType::Upgrade: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            ++stats_.upgradeRaces;
            warmInstallL2Line(line_addr, LineState::Modified, now);
        }
        break;
      }

      case RequestType::Dcbz: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            line->state = LineState::Modified;
            if (CacheLine *l1line = l1d_.peekMutable(line_addr))
                l1line->state = LineState::Modified;
        } else {
            warmInstallL2Line(line_addr, LineState::Modified, now);
        }
        break;
      }

      case RequestType::Dcbf: {
        CacheLine *line = l2_.peekMutable(line_addr);
        if (line) {
            const bool dirty = isDirty(line->state);
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
            if (dirty)
                warmWriteback(line_addr, now);
        }
        break;
      }

      case RequestType::Dcbi: {
        if (l2_.peek(line_addr)) {
            l1d_.invalidateLine(line_addr);
            l1i_.invalidateLine(line_addr);
            l2_.invalidateLine(line_addr);
            if (tracker_)
                tracker_->onLineEvict(line_addr);
        }
        break;
      }

      default:
        panic("cpu%d: request type %d cannot complete locally", cpu_,
              static_cast<int>(type));
    }

    if (checker_)
        checker_->onTransition(line_addr, "warm_local_complete");
}

void
Node::warmInstallL2Line(Addr line_addr, LineState state, Tick now)
{
    Eviction evicted;
    l2_.fill(line_addr, state, now, now, evicted);
    if (evicted.valid)
        warmEvictL2Line(evicted.lineAddr, evicted.state, now);
    if (tracker_)
        tracker_->onLineFill(line_addr);
}

void
Node::warmEvictL2Line(Addr line_addr, LineState state, Tick now)
{
    l1d_.invalidateLine(line_addr);
    l1i_.invalidateLine(line_addr);
    if (tracker_)
        tracker_->onLineEvict(line_addr);
    if (isDirty(state))
        warmWriteback(line_addr, now);
}

void
Node::warmWriteback(Addr line_addr, Tick now)
{
    ++stats_.writebacksIssued;
    warmRequest(RequestType::Writeback, line_addr, now,
                /*is_prefetch=*/false);
}

void
Node::warmMaybePrefetch(Addr line_addr, bool is_store, bool was_miss,
                        Tick now)
{
    prefetchScratch_.clear();
    prefetcher_.observe(line_addr, is_store, was_miss, prefetchScratch_);
    for (const PrefetchCandidate &c : prefetchScratch_) {
        if (l2_.peek(c.lineAddr))
            continue;
        if (tracker_ && config_.cgct.regionPrefetchHints) {
            if (isExternallyDirty(tracker_->peekState(c.lineAddr)))
                continue;
        }
        ++stats_.prefetchesIssued;
        warmRequest(c.exclusive ? RequestType::PrefetchExclusive
                                : RequestType::Prefetch,
                    c.lineAddr, now, /*is_prefetch=*/true);
    }
}

LineSnoopOutcome
Node::warmSnoopLine(const SystemRequest &req)
{
    // Same transitions as snoopLine, without the tag-port occupancy or
    // the snoop statistics (the warm phase is not measured).
    const SnoopKind kind = snoopKindOf(req.type);
    CacheLine *line = l2_.peekMutable(req.lineAddr);
    const LineSnoopOutcome out =
        applyLineSnoop(line ? line->state : LineState::Invalid, kind);
    if (line && out.next != out.before) {
        if (out.next == LineState::Invalid) {
            l1d_.invalidateLine(req.lineAddr);
            l1i_.invalidateLine(req.lineAddr);
            l2_.invalidateLine(req.lineAddr);
            if (tracker_)
                tracker_->onLineEvict(req.lineAddr);
        } else {
            line->state = out.next;
            if (CacheLine *l1line = l1d_.peekMutable(req.lineAddr))
                l1line->state = LineState::Shared;
        }
    }
    return out;
}

RegionSnoopBits
Node::warmSnoopRegion(const SystemRequest &req,
                      bool requester_gets_exclusive, Tick now)
{
    if (!tracker_)
        return RegionSnoopBits{};
    if (config_.cgct.sharedPerChip && req.cpu >= 0 &&
        static_cast<unsigned>(req.cpu) < config_.topology.numCpus &&
        config_.topology.chipOfCpu(req.cpu) ==
            config_.topology.chipOfCpu(cpu_)) {
        return RegionSnoopBits{};
    }
    return tracker_->externalSnoop(req.lineAddr, requester_gets_exclusive,
                                   now);
}

LineState
Node::peekLine(Addr addr) const
{
    const CacheLine *line = l2_.peek(addr);
    return line ? line->state : LineState::Invalid;
}

std::string
Node::checkInvariants() const
{
    std::string err;
    // L1 inclusion: every valid L1 line must be present in the L2.
    for (const Cache *l1 : {&l1i_, &l1d_}) {
        l1->array().forEachValidLine([&](const CacheLine &line) {
            if (!err.empty())
                return;
            if (!l2_.peek(line.lineAddr)) {
                err = l1->name() + " holds line not in L2 at 0x" +
                      std::to_string(line.lineAddr);
            }
        });
    }
    if (!err.empty())
        return err;

    const auto *cgct_ctrl =
        dynamic_cast<const CgctController *>(tracker_.get());
    if (!cgct_ctrl)
        return err;
    const RegionCoherenceArray &rca = cgct_ctrl->rca();

    // RCA inclusion: every cached line's region must have a valid entry.
    std::unordered_map<Addr, std::uint32_t> lines_per_region;
    l2_.array().forEachValidLine([&](const CacheLine &line) {
        ++lines_per_region[alignDown(line.lineAddr, rca.regionBytes())];
    });
    // With a per-chip RCA the entry counts aggregate the sibling core's
    // lines too, so only the per-node exactness checks are skipped.
    const bool shared = config_.cgct.sharedPerChip;
    for (const auto &[region, count] : lines_per_region) {
        const RegionEntry *entry = rca.find(region);
        if (!entry) {
            err = "L2 line cached without RCA entry for region 0x" +
                  std::to_string(region);
            return err;
        }
        if (!shared && entry->lineCount != count) {
            err = "RCA line count mismatch for region 0x" +
                  std::to_string(region) + ": entry says " +
                  std::to_string(entry->lineCount) + ", L2 holds " +
                  std::to_string(count);
            return err;
        }
        if (shared && entry->lineCount < count) {
            err = "shared RCA line count below this core's lines for "
                  "region 0x" + std::to_string(region);
            return err;
        }
    }

    // Line counts for regions with no cached lines must be zero.
    if (!shared) {
        rca.forEachValidEntry([&](const RegionEntry &entry) {
            if (!err.empty())
                return;
            if (entry.lineCount != 0 &&
                lines_per_region.find(entry.regionAddr) ==
                    lines_per_region.end()) {
                err = "RCA entry has nonzero count but no cached lines: "
                      "0x" + std::to_string(entry.regionAddr);
            }
        });
    }
    return err;
}

void
Node::noteMissLatency(Tick issued, Tick ready)
{
    stats_.memLatencySum += ready - issued;
    ++stats_.memLatencyCount;
    missLatencyHist_.record(ready - issued);
}

void
Node::serialize(Serializer &s) const
{
    if (mshr_.inFlight() != 0 || !fillWaiters_.empty() ||
        !pendingMisses_.empty() || !pendingRegionAcq_.empty() ||
        drainingRegion_)
        panic("Node: serializing cpu %d with requests in flight — "
              "snapshots require a drained (quiescent) system", cpu_);
    l1i_.serialize(s);
    l1d_.serialize(s);
    l2_.serialize(s);
    mshr_.serialize(s);
    prefetcher_.serialize(s);
    s.u64(l2TagBusy_);
    s.u64(stats_.requestsTotal);
    s.u64(stats_.broadcasts);
    s.u64(stats_.directs);
    s.u64(stats_.localCompletes);
    for (std::size_t i = 0; i < Stats::kNumCat; ++i) {
        s.u64(stats_.broadcastsByCat[i]);
        s.u64(stats_.directsByCat[i]);
        s.u64(stats_.localByCat[i]);
    }
    s.u64(stats_.writebacksIssued);
    s.u64(stats_.demandMisses);
    s.u64(stats_.prefetchesIssued);
    s.u64(stats_.upgradeRaces);
    s.u64(stats_.inclusionWritebacks);
    s.u64(stats_.snoopsReceived);
    s.u64(stats_.tagWaitCycles);
    s.u64(stats_.memLatencySum);
    s.u64(stats_.memLatencyCount);
    missLatencyHist_.serialize(s);
}

void
Node::deserialize(SectionReader &r)
{
    l1i_.deserialize(r);
    l1d_.deserialize(r);
    l2_.deserialize(r);
    mshr_.deserialize(r);
    prefetcher_.deserialize(r);
    l2TagBusy_ = r.u64();
    stats_.requestsTotal = r.u64();
    stats_.broadcasts = r.u64();
    stats_.directs = r.u64();
    stats_.localCompletes = r.u64();
    for (std::size_t i = 0; i < Stats::kNumCat; ++i) {
        stats_.broadcastsByCat[i] = r.u64();
        stats_.directsByCat[i] = r.u64();
        stats_.localByCat[i] = r.u64();
    }
    stats_.writebacksIssued = r.u64();
    stats_.demandMisses = r.u64();
    stats_.prefetchesIssued = r.u64();
    stats_.upgradeRaces = r.u64();
    stats_.inclusionWritebacks = r.u64();
    stats_.snoopsReceived = r.u64();
    stats_.tagWaitCycles = r.u64();
    stats_.memLatencySum = r.u64();
    stats_.memLatencyCount = r.u64();
    missLatencyHist_.deserialize(r);
}

void
Node::resetStats()
{
    stats_ = Stats{};
    missLatencyHist_.reset();
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
}

void
Node::addStats(StatGroup &group) const
{
    group.addScalar("requests_total", "system requests issued",
                    &stats_.requestsTotal);
    group.addScalar("broadcasts", "requests broadcast",
                    &stats_.broadcasts);
    group.addScalar("directs", "requests sent directly to memory",
                    &stats_.directs);
    group.addScalar("local_completes",
                    "requests completed with no external request",
                    &stats_.localCompletes);
    group.addScalar("writebacks", "write-backs issued",
                    &stats_.writebacksIssued);
    group.addScalar("demand_misses", "demand L2 misses",
                    &stats_.demandMisses);
    group.addScalar("prefetches", "prefetches issued",
                    &stats_.prefetchesIssued);
    group.addScalar("upgrade_races",
                    "upgrades that lost the line before resolving",
                    &stats_.upgradeRaces);
    group.addScalar("inclusion_writebacks",
                    "lines flushed by region evictions",
                    &stats_.inclusionWritebacks);
    group.addScalar("snoops_received",
                    "external snoops that probed this node's tags",
                    &stats_.snoopsReceived);
    group.addScalar("tag_wait_cycles",
                    "cycles local accesses waited behind snoop lookups",
                    &stats_.tagWaitCycles);
    group.addDerived("avg_miss_latency",
                     "average demand miss latency (cycles)",
                     [this] {
                         return stats_.memLatencyCount
                                    ? static_cast<double>(
                                          stats_.memLatencySum) /
                                          static_cast<double>(
                                              stats_.memLatencyCount)
                                    : 0.0;
                     });
    group.addHistogram("miss_latency",
                       "demand miss latency distribution (cycles)",
                       &missLatencyHist_);
    l1i_.addStats(group);
    l1d_.addStats(group);
    l2_.addStats(group);
    prefetcher_.addStats(group);
    if (tracker_)
        tracker_->addStats(group);
}

} // namespace cgct
