/**
 * @file
 * The unnecessary-broadcast oracle of Figure 2: at every broadcast, before
 * any snoop-induced state change, it inspects every other processor's cache
 * and decides whether the broadcast was actually needed:
 *
 *  - write-backs never need a broadcast (only the controller must see them);
 *  - instruction fetches (and shared prefetches) need one only if some
 *    other cache holds a *modified* copy of the line;
 *  - everything else (data reads/writes, upgrades, DCB operations) needs
 *    one only if some other cache holds *any* copy of the line.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "coherence/snoop.hpp"

namespace cgct {

class Node;

/** Classifies every broadcast as necessary or unnecessary. */
class Oracle
{
  public:
    explicit Oracle(std::vector<Node *> nodes) : nodes_(std::move(nodes)) {}

    /** Bus pre-snoop observer. */
    void observe(const SystemRequest &req);

    /** Per-category tallies. */
    struct Counts {
        std::uint64_t total = 0;
        std::uint64_t unnecessary = 0;
    };

    const Counts &
    category(RequestCategory cat) const
    {
        return byCat_[static_cast<std::size_t>(cat)];
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t unnecessary() const { return unnecessary_; }

    double
    unnecessaryFraction() const
    {
        return total_ ? static_cast<double>(unnecessary_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    void reset();
    void addStats(StatGroup &group) const;

    /** Checkpoint support: per-category and total tallies. */
    void serialize(Serializer &s) const;
    void deserialize(SectionReader &r);

  private:
    std::vector<Node *> nodes_;
    Counts byCat_[static_cast<std::size_t>(RequestCategory::NumCategories)];
    std::uint64_t total_ = 0;
    std::uint64_t unnecessary_ = 0;
};

} // namespace cgct
