/**
 * @file
 * Parallel experiment sweep: expands the benchmark x region-size x seed
 * matrix into independent jobs, runs them on a work-stealing thread pool,
 * and hands results back in matrix order so the emitted CSV/JSON is
 * byte-identical to a serial pass regardless of thread count or job
 * completion order.
 *
 * Determinism contract: every cell's seed is derived at expansion time
 * from the base seed alone (the same multiply-add chain the serial
 * cgct_sweep always used), each job owns its entire simulation state
 * (workload generator, RNGs, System), and rows are emitted strictly in
 * cell-index order. Same spec + same base seed => same bytes at any
 * --jobs value.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workload/profile.hpp"

namespace cgct {

/** The seed-chain step shared by cgct_sweep and simulateSeeds. */
inline std::uint64_t
nextSweepSeed(std::uint64_t s)
{
    return s * 2654435761ULL + 12345;
}

/** One cell of the experiment matrix (one simulation job). */
struct SweepCell {
    std::size_t index = 0;            ///< Emission order.
    const WorkloadProfile *profile = nullptr;
    std::uint64_t regionBytes = 0;    ///< 0 = baseline (CGCT off).
    std::uint64_t seed = 0;           ///< Fully derived at expansion time.
};

/** Everything that defines a sweep. */
struct SweepSpec {
    std::vector<const WorkloadProfile *> profiles;
    std::vector<std::uint64_t> regionSizes;  ///< 0 = baseline.
    unsigned seedsPerCell = 3;
    std::uint64_t baseSeed = 20050609;
    RunOptions opts;                 ///< seed is overwritten per cell.
    SystemConfig baseConfig;

    /**
     * When true, every cell runs one sampled simulation
     * (simulateSampled) instead of a full-detail run: confidence comes
     * from the measurement windows rather than seed repetition, so the
     * caller normally pairs this with seedsPerCell = 1
     * (docs/SAMPLING.md). Windows run serially inside each cell — the
     * sweep already parallelizes across cells.
     */
    bool sampled = false;
    SamplingOptions sampling;

    /** Enumerate cells: profile-major, then region, then seed — the
     * exact order the serial sweep always emitted. */
    std::vector<SweepCell> expand() const;
};

/** What a (possibly interrupted) resumable sweep produced. */
struct SweepOutcome {
    /** Results for the contiguous completed prefix, in cell order. On
     *  an uninterrupted run this is every cell. */
    std::vector<RunResult> results;
    std::size_t total = 0;          ///< Cells in the matrix.
    std::size_t completedCells = 0; ///< Cells finished (any order).
    bool interrupted = false;       ///< Stop was requested mid-run.
};

/** Runs a SweepSpec's cells across a thread pool. */
class SweepRunner
{
  public:
    /** Called from worker threads after each job finishes. */
    using ProgressFn =
        std::function<void(std::size_t done, std::size_t total,
                           const SweepCell &cell)>;
    /** Called from the run() caller's thread, in cell-index order. */
    using ResultFn =
        std::function<void(const SweepCell &cell, const RunResult &r)>;

    /** @param jobs worker threads; 0 = hardware concurrency. */
    SweepRunner(SweepSpec spec, unsigned jobs);

    const std::vector<SweepCell> &cells() const { return cells_; }
    unsigned jobs() const { return jobs_; }

    /**
     * Run every cell. @p on_result streams results in cell order (emit
     * row k as soon as rows 0..k-1 have been emitted and k is done);
     * @p on_progress fires on completion order. Returns all results in
     * cell order.
     */
    std::vector<RunResult> run(const ResultFn &on_result = {},
                               const ProgressFn &on_progress = {});

    /** Hooks that make a sweep crash-safe and interruptible. */
    struct ResumeHooks {
        /** Cells already completed by an earlier run (resume journal),
         *  keyed by cell index; these are not re-run. May be null. */
        const std::map<std::uint64_t, RunResult> *cached = nullptr;
        /** Polled when a worker picks up a cell; true = skip it (and
         *  every later fresh cell). Signal-handler friendly. */
        std::function<bool()> stopRequested;
        /** Called from the worker thread the moment a fresh cell
         *  finishes — before any ordered emission — so the result can
         *  be journaled even if emission never reaches it. */
        ResultFn onCompleted;
    };

    /**
     * Like run(), but skips cached cells, stops dispatching when
     * stopRequested() turns true, and reports whether the matrix
     * finished. Emission (@p on_result and SweepOutcome::results) still
     * covers exactly the contiguous completed prefix in cell order, so
     * an interrupted CSV is a clean truncation — cells completed out of
     * order beyond the break are preserved via onCompleted only.
     */
    SweepOutcome runResumable(const ResumeHooks &hooks,
                              const ResultFn &on_result = {},
                              const ProgressFn &on_progress = {});

  private:
    SweepSpec spec_;
    std::vector<SweepCell> cells_;
    unsigned jobs_;
};

/**
 * CSV header matching writeSweepCsvRow's column order. The default is
 * the historical 16-column format, byte-identical to every earlier
 * release; @p sampled appends the per-window CI columns a sampled sweep
 * fills in (docs/SAMPLING.md), and @p topo appends the interconnect
 * topology columns a non-default `--nodes`/`--topology` sweep reports
 * (docs/TOPOLOGY.md).
 */
void writeSweepCsvHeader(std::ostream &os, bool sampled = false,
                         bool topo = false);

/** One CSV row (16 columns, plus the sampling/topology columns when
 *  asked). */
void writeSweepCsvRow(std::ostream &os, const RunResult &r,
                      bool sampled = false, bool topo = false);

} // namespace cgct
