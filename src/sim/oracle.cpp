#include "sim/oracle.hpp"

#include "sim/node.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

void
Oracle::observe(const SystemRequest &req)
{
    bool any_copy = false;
    bool any_dirty = false;
    for (Node *node : nodes_) {
        if (node->cpuId() == req.cpu)
            continue;
        const LineState s = node->peekLine(req.lineAddr);
        if (isValid(s))
            any_copy = true;
        if (isDirty(s))
            any_dirty = true;
    }

    bool needed;
    switch (req.type) {
      case RequestType::Writeback:
        needed = false;
        break;
      case RequestType::Ifetch:
      case RequestType::Prefetch:
        needed = any_dirty;
        break;
      default:
        needed = any_copy;
        break;
    }

    const auto cat = static_cast<std::size_t>(categoryOf(req.type));
    ++byCat_[cat].total;
    ++total_;
    if (!needed) {
        ++byCat_[cat].unnecessary;
        ++unnecessary_;
    }
}

void
Oracle::reset()
{
    for (auto &c : byCat_)
        c = Counts{};
    total_ = 0;
    unnecessary_ = 0;
}

void
Oracle::serialize(Serializer &s) const
{
    for (const Counts &c : byCat_) {
        s.u64(c.total);
        s.u64(c.unnecessary);
    }
    s.u64(total_);
    s.u64(unnecessary_);
}

void
Oracle::deserialize(SectionReader &r)
{
    for (Counts &c : byCat_) {
        c.total = r.u64();
        c.unnecessary = r.u64();
    }
    total_ = r.u64();
    unnecessary_ = r.u64();
}

void
Oracle::addStats(StatGroup &group) const
{
    group.addScalar("oracle.broadcasts", "broadcasts observed", &total_);
    group.addScalar("oracle.unnecessary",
                    "broadcasts an oracle would have avoided",
                    &unnecessary_);
    group.addDerived("oracle.unnecessary_fraction",
                     "fraction of broadcasts that were unnecessary",
                     [this] { return unnecessaryFraction(); });
}

} // namespace cgct
