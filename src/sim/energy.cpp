#include "sim/energy.hpp"

#include <iomanip>
#include <ostream>

#include "core/cgct_controller.hpp"
#include "sim/system.hpp"

namespace cgct {

EnergyBreakdown
computeEnergy(System &system, const EnergyParams &p)
{
    EnergyBreakdown e;

    const auto &bus = system.bus().stats();
    const unsigned cpus = system.numCpus();

    // Each broadcast is driven to every agent and probes every *other*
    // processor's L2 tags; a direct request touches only its controller.
    std::uint64_t directs = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        const Node::Stats &ns = system.node(i).stats();
        directs += ns.directs;

        e.tagLookups += p.l2TagLookupNj *
                        static_cast<double>(ns.snoopsReceived);

        const Cache::Stats &l1i = system.node(i).l1i().stats();
        const Cache::Stats &l1d = system.node(i).l1d().stats();
        const Cache::Stats &l2 = system.node(i).l2().stats();
        e.cacheAccess +=
            p.l1AccessNj * static_cast<double>(l1i.hits + l1i.misses +
                                               l1d.hits + l1d.misses) +
            p.l2TagLookupNj * static_cast<double>(l2.hits + l2.misses) +
            p.l2DataAccessNj * static_cast<double>(l2.hits + l2.fills);

        if (auto *cgct_ctrl = dynamic_cast<CgctController *>(
                system.node(i).tracker())) {
            const auto &rs = cgct_ctrl->rca().stats();
            e.rca += p.rcaLookupNj *
                         static_cast<double>(rs.hits + rs.misses) +
                     p.rcaUpdateNj * static_cast<double>(rs.allocations);
        }
    }

    e.network = p.busBroadcastPerAgentNj *
                    static_cast<double>(bus.broadcasts) *
                    static_cast<double>(cpus) +
                p.directRequestNj * static_cast<double>(directs);

    double dram_accesses = 0.0;
    for (unsigned i = 0; i < system.numMemCtrls(); ++i) {
        const auto &mc = system.memCtrl(i).stats();
        dram_accesses += static_cast<double>(
            mc.overlappedReads + mc.directReads + mc.writebacks);
    }
    e.dram = p.dramAccessNj * dram_accesses;

    e.dataTransfer = p.dataPerByteNj *
                     static_cast<double>(system.dataNetwork().stats().bytes);
    return e;
}

void
printEnergy(std::ostream &os, const EnergyBreakdown &e)
{
    const auto uj = [](double nj) { return nj / 1000.0; };
    os << std::fixed << std::setprecision(1);
    os << "  snoop tag lookups " << std::setw(12) << uj(e.tagLookups)
       << " uJ\n"
       << "  cache activity    " << std::setw(12) << uj(e.cacheAccess)
       << " uJ\n"
       << "  request network   " << std::setw(12) << uj(e.network)
       << " uJ\n"
       << "  DRAM              " << std::setw(12) << uj(e.dram) << " uJ\n"
       << "  data transfer     " << std::setw(12) << uj(e.dataTransfer)
       << " uJ\n"
       << "  RCA logic         " << std::setw(12) << uj(e.rca) << " uJ\n"
       << "  total             " << std::setw(12) << uj(e.total())
       << " uJ\n";
}

} // namespace cgct
