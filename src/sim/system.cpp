#include "sim/system.hpp"

#include <ostream>
#include <string>
#include <unordered_map>

#include "common/log.hpp"
#include "event/pdes.hpp"
#include "snapshot/serializer.hpp"

namespace cgct {

unsigned
System::shardOfCpu(CpuId cpu) const
{
    // Whole chips map to shards (a chip may share one region tracker,
    // and its cores share the chip's locality) with the chip range
    // split as evenly as possible.
    const unsigned n_chips = config_.topology.numChips();
    const unsigned n_shards =
        static_cast<unsigned>(shardQs_.size());
    const unsigned chip = config_.topology.chipOfCpu(cpu);
    return chip * n_shards / n_chips;
}

System::System(const SystemConfig &config, OpSource &source,
               unsigned shards)
    : config_(config), map_(config.topology)
{
    config_.validate();

    // Sources that schedule their own wakeups (trace replay sync
    // events) need the event queue before any core binds its waiter.
    source.attach(eq_);

    // Sharded-run gating (docs/PDES.md): decide up front, because the
    // nodes and cores must be constructed against their shard queues.
    bool check = config_.obs.checkInvariants;
#ifndef NDEBUG
    check = check || config_.cgct.enabled;
#endif
    const unsigned n_chips = config_.topology.numChips();
    unsigned eff_shards = shards < n_chips ? shards : n_chips;
    const bool flat_bus =
        config_.interconnect.topology == TopologyKind::Bus;
    const bool pdes_ok = eff_shards > 1 && flat_bus &&
                         !config_.cgct.enabled &&
                         !config_.obs.trace && !check &&
                         config_.interconnect.snoopLatency >= 1 &&
                         source.drawsIndependent();
    if (shards > 1 && !pdes_ok) {
        // The fallback is silent per run (byte-identical results either
        // way), but the *first* ignored --shards request names its gate
        // once on stderr so the user knows why no speedup appeared.
        const char *gate =
            eff_shards <= 1 ? "the machine has fewer than two chips"
            : !flat_bus     ? "--topology is not the flat bus (only the "
                              "single-hub bus has a PDES deferral channel)"
            : config_.cgct.enabled
                ? "CGCT is enabled (shared-tracker routing is cross-CPU "
                  "state outside the bus ordering point)"
            : config_.obs.trace ? "tracing is enabled"
            : check             ? "invariant checking is enabled"
            : config_.interconnect.snoopLatency < 1
                ? "the snoop latency (the PDES lookahead) is zero"
                : "the workload's lanes do not draw independently";
        warnOnce("pdes-fallback", "system",
                 "--shards %u ignored, running sequentially: %s "
                 "(docs/PDES.md)",
                 shards, gate);
    }
    if (pdes_ok) {
        shardQs_.reserve(eff_shards);
        for (unsigned i = 0; i < eff_shards; ++i)
            shardQs_.push_back(std::make_unique<EventQueue>());
    }

    const unsigned n_ctrl = config_.topology.numMemCtrls();
    std::vector<MemoryController *> ctrl_ptrs;
    for (unsigned i = 0; i < n_ctrl; ++i) {
        memCtrls_.push_back(std::make_unique<MemoryController>(
            static_cast<MemCtrlId>(i), eq_, config_.interconnect));
        ctrl_ptrs.push_back(memCtrls_.back().get());
    }

    // One extra data-network link for the I/O bridge (DMA).
    dataNet_ = std::make_unique<DataNetwork>(config_.topology.numCpus + 1,
                                             config_.interconnect);
    switch (config_.interconnect.topology) {
      case TopologyKind::Bus:
        bus_ = std::make_unique<Bus>(eq_, config_.interconnect, map_,
                                     *dataNet_, ctrl_ptrs);
        break;
      case TopologyKind::Hier:
        bus_ = std::make_unique<HierRouter>(
            eq_, config_.interconnect, map_, *dataNet_, ctrl_ptrs,
            config_.topology, config_.cgct.regionBytes);
        break;
      case TopologyKind::Dir:
        bus_ = std::make_unique<DirectoryInterconnect>(
            eq_, config_.interconnect, map_, *dataNet_, ctrl_ptrs,
            config_.topology, config_.cgct.regionBytes);
        break;
    }

    // One tracker per core, or one per chip shared by its cores
    // (Section 3.2) when configured.
    std::vector<std::shared_ptr<RegionTracker>> chip_trackers(
        config_.topology.numChips());
    std::vector<Node *> node_ptrs;
    for (unsigned i = 0; i < config_.topology.numCpus; ++i) {
        std::shared_ptr<RegionTracker> tracker;
        if (config_.cgct.enabled && config_.cgct.sharedPerChip) {
            auto &slot = chip_trackers[config_.topology.chipOfCpu(
                static_cast<CpuId>(i))];
            if (!slot)
                slot = makeTracker(static_cast<CpuId>(i), config_.cgct,
                                   config_.l2.lineBytes);
            tracker = slot;
        } else {
            tracker = makeTracker(static_cast<CpuId>(i), config_.cgct,
                                  config_.l2.lineBytes);
        }
        // A sharded node lives on its shard's queue; the bus, memory
        // controllers and data network stay on the hub queue.
        EventQueue &node_eq =
            shardQs_.empty()
                ? eq_
                : *shardQs_[shardOfCpu(static_cast<CpuId>(i))];
        nodes_.push_back(std::make_unique<Node>(
            static_cast<CpuId>(i), config_, node_eq, *bus_, *dataNet_,
            map_, ctrl_ptrs, std::move(tracker)));
        bus_->addClient(nodes_.back().get());
        node_ptrs.push_back(nodes_.back().get());
    }

    oracle_ = std::make_unique<Oracle>(node_ptrs);
    bus_->setObserver(
        [this](const SystemRequest &req) { oracle_->observe(req); });

    for (unsigned i = 0; i < config_.topology.numCpus; ++i) {
        EventQueue &core_eq =
            shardQs_.empty()
                ? eq_
                : *shardQs_[shardOfCpu(static_cast<CpuId>(i))];
        cores_.push_back(std::make_unique<CoreModel>(
            static_cast<CpuId>(i), config_.core, core_eq, *nodes_[i],
            source));
    }

    if (config_.dma.enabled) {
        dma_ = std::make_unique<DmaEngine>(eq_, *bus_, config_.dma,
                                           config_.topology,
                                           /*seed=*/0x10b71d9e);
    }

    // Observability: the trace sink is always present (one pointer + bool
    // test per site when disabled); the checker only when requested, or
    // in debug builds whenever CGCT runs.
    trace_.setEnabled(config_.obs.trace);
    bus_->setTraceSink(&trace_);
    for (auto &mc : memCtrls_)
        mc->setTraceSink(&trace_);
    for (auto &node : nodes_)
        node->setTraceSink(&trace_);

    if (check) {
        std::vector<const Node *> const_nodes(node_ptrs.begin(),
                                              node_ptrs.end());
        checker_ = std::make_unique<InvariantChecker>(config_,
                                                      const_nodes);
        checker_->setEventQueue(&eq_);
        checker_->setInterconnect(bus_.get());
        bus_->setPostResolveHook([this](const SystemRequest &req) {
            checker_->onTransition(req.lineAddr, "bus_resolve");
        });
        for (auto &node : nodes_)
            node->setInvariantChecker(checker_.get());
    }

    if (!shardQs_.empty()) {
        std::vector<EventQueue *> qs;
        qs.reserve(shardQs_.size());
        for (auto &q : shardQs_)
            qs.push_back(q.get());
        // pdes_ok implies the flat-bus topology (gated above).
        pdes_ = std::make_unique<PdesCoordinator>(
            eq_, std::move(qs), static_cast<Bus &>(*bus_),
            config_.interconnect.snoopLatency);
        for (unsigned i = 0; i < config_.topology.numCpus; ++i)
            nodes_[i]->setPdes(pdes_.get(),
                               shardOfCpu(static_cast<CpuId>(i)));
    }
}

System::~System() = default;

std::uint64_t
System::run(std::uint64_t max_events)
{
    if (pdes_)
        return pdes_->run(max_events);
    return eq_.run(max_events);
}

unsigned
System::shards() const
{
    return pdes_ ? pdes_->shards() : 1;
}

void
System::start()
{
    for (auto &core : cores_)
        core->start();
    if (dma_) {
        // The engine stops itself once every core has retired its stream,
        // letting the event queue drain.
        dma_->start([this] { return !allCoresFinished(); });
    }
}

bool
System::allCoresFinished() const
{
    for (const auto &core : cores_)
        if (!core->finished())
            return false;
    return true;
}

unsigned
System::coresWaitingOnSync() const
{
    unsigned n = 0;
    for (const auto &core : cores_)
        n += core->waitingOnSync() ? 1 : 0;
    return n;
}

Tick
System::maxCoreClock() const
{
    Tick m = 0;
    for (const auto &core : cores_)
        m = std::max(m, core->clock());
    return m;
}

void
System::resetStats(Tick now)
{
    for (auto &node : nodes_)
        node->resetStats();
    for (auto &mc : memCtrls_)
        mc->resetStats();
    bus_->resetStats(now);
    dataNet_->resetStats();
    oracle_->reset();
}

void
System::serializeState(Serializer &s) const
{
    if (!allCoresFinished())
        panic("System: serializing before every core drained");
    for (const auto &q : shardQs_) {
        if (!q->empty())
            panic("System: serializing with shard events pending");
    }

    // Sharded runs quiesce into the sequential representation (clocks
    // aligned, executed counts folded into the hub — see
    // PdesCoordinator::run), so the sections below are byte-identical
    // at any shard count and snapshots are interchangeable.
    s.beginSection("eq");
    eq_.serialize(s);
    s.endSection();

    s.beginSection("bus");
    bus_->serialize(s);
    s.endSection();

    s.beginSection("datanet");
    dataNet_->serialize(s);
    s.endSection();

    s.beginSection("oracle");
    oracle_->serialize(s);
    s.endSection();

    if (dma_) {
        s.beginSection("dma");
        dma_->serialize(s);
        s.endSection();
    }

    for (std::size_t i = 0; i < memCtrls_.size(); ++i) {
        s.beginSection("memctrl" + std::to_string(i));
        memCtrls_[i]->serialize(s);
        s.endSection();
    }

    // Chip-shared trackers appear once, under their first owner's index.
    std::unordered_map<const RegionTracker *, bool> seen;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        s.beginSection("core" + std::to_string(i));
        cores_[i]->serialize(s);
        s.endSection();

        s.beginSection("node" + std::to_string(i));
        nodes_[i]->serialize(s);
        s.endSection();

        const RegionTracker *tracker = nodes_[i]->tracker();
        if (tracker && !seen.count(tracker)) {
            seen.emplace(tracker, true);
            s.beginSection("tracker" + std::to_string(i));
            tracker->serialize(s);
            s.endSection();
        }
    }
}

void
System::restoreState(const Deserializer &d)
{
    {
        SectionReader r = d.section("eq");
        eq_.deserialize(r);
    }
    if (pdes_) {
        // Shard clocks are not serialized (they are always aligned with
        // the hub at quiescence); re-align them with the restored hub.
        pdes_->restoreClocks(eq_.now());
    }
    {
        SectionReader r = d.section("bus");
        bus_->deserialize(r);
    }
    {
        SectionReader r = d.section("datanet");
        dataNet_->deserialize(r);
    }
    {
        SectionReader r = d.section("oracle");
        oracle_->deserialize(r);
    }
    if (dma_) {
        SectionReader r = d.section("dma");
        dma_->deserialize(r);
    }
    for (std::size_t i = 0; i < memCtrls_.size(); ++i) {
        SectionReader r = d.section("memctrl" + std::to_string(i));
        memCtrls_[i]->deserialize(r);
    }
    std::unordered_map<RegionTracker *, bool> seen;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        {
            SectionReader r = d.section("core" + std::to_string(i));
            cores_[i]->deserialize(r);
        }
        {
            SectionReader r = d.section("node" + std::to_string(i));
            nodes_[i]->deserialize(r);
        }
        RegionTracker *tracker = nodes_[i]->tracker();
        if (tracker && !seen.count(tracker)) {
            seen.emplace(tracker, true);
            SectionReader r = d.section("tracker" + std::to_string(i));
            tracker->deserialize(r);
        }
    }
}

void
System::resumePhase()
{
    for (auto &core : cores_)
        core->resume();
    if (dma_)
        dma_->start([this] { return !allCoresFinished(); });
}

void
System::dumpStats(std::ostream &os) const
{
    {
        StatGroup g("system");
        oracle_->addStats(g);
        bus_->addStats(g);
        dataNet_->addStats(g);
        if (dma_)
            dma_->addStats(g);
        for (const auto &mc : memCtrls_)
            mc->addStats(g);
        g.dump(os);
    }
    for (unsigned i = 0; i < nodes_.size(); ++i) {
        StatGroup g("cpu" + std::to_string(i));
        nodes_[i]->addStats(g);
        cores_[i]->addStats(g);
        g.dump(os);
    }
}

} // namespace cgct
