#include "sim/simulator.hpp"

#include <future>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/system.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"
#include "workload/trace_replay.hpp"

namespace cgct {

void
scheduleWarmupCheck(System &sys, std::function<std::uint64_t()> min_ops,
                    std::uint64_t warmup_ops, Tick *measure_start,
                    bool *done)
{
    constexpr Tick kCheckInterval = 5000;
    sys.eq().scheduleIn(kCheckInterval, [&sys, min_ops, warmup_ops,
                                         measure_start, done] {
        // A run that completed before this check has nothing left to
        // measure — resetting stats now would zero the whole result
        // and put measure_start past the final clock.
        if (sys.allCoresFinished())
            return;
        if (min_ops() >= warmup_ops) {
            *measure_start = sys.eq().now();
            sys.resetStats(sys.eq().now());
            if (done)
                *done = true;
            return; // Warmed up: stop checking.
        }
        if (!sys.allCoresFinished())
            scheduleWarmupCheck(sys, min_ops, warmup_ops, measure_start,
                                done);
    });
}

RunResult
simulateOnce(const SystemConfig &config, const WorkloadProfile &profile,
             const RunOptions &opts)
{
    SyntheticWorkload workload(profile, config.topology.numCpus,
                               opts.opsPerCpu, opts.seed);
    // With a capture path, tee every consumed op into a v2 trace; the
    // tee is transparent, so captured and plain runs are identical.
    std::unique_ptr<TraceCapture> capture;
    OpSource *source = &workload;
    if (!opts.capturePath.empty()) {
        capture = std::make_unique<TraceCapture>(
            workload, opts.capturePath, config.topology.numCpus,
            opts.opsPerCpu);
        source = capture.get();
    }
    System sys(config, *source, opts.shards);

    Tick measure_start = 0;
    sys.start();
    if (opts.warmupOps > 0 && opts.warmupOps < opts.opsPerCpu)
        scheduleWarmupCheck(
            sys, [&workload] { return workload.minOpsDrawn(); },
            opts.warmupOps, &measure_start);

    const std::uint64_t executed = sys.run(opts.maxEvents);
    if (executed >= opts.maxEvents)
        fatal("simulateOnce: event cap hit (%llu) — runaway simulation?",
              static_cast<unsigned long long>(opts.maxEvents));
    if (!sys.allCoresFinished())
        panic("simulateOnce: event queue drained before cores finished");

    if (capture)
        capture->finish();
    return collectRunResult(sys, profile.name, opts.seed, measure_start);
}

RunResult
simulateReplay(const SystemConfig &config, const std::string &trace_path,
               const RunOptions &opts, std::ostream *stats_out)
{
    const std::string name = "trace:" + trace_path;
    if (traceFileVersion(trace_path) == kTraceVersion1) {
        TraceReader reader(trace_path);
        if (reader.numCpus() != config.topology.numCpus)
            fatal("trace has %u CPUs but the system has %u",
                  reader.numCpus(), config.topology.numCpus);
        System sys(config, reader);
        sys.start();
        const std::uint64_t executed = sys.run(opts.maxEvents);
        if (executed >= opts.maxEvents)
            fatal("simulateReplay: event cap hit (%llu) — runaway "
                  "simulation?",
                  static_cast<unsigned long long>(opts.maxEvents));
        if (!sys.allCoresFinished())
            panic("simulateReplay: event queue drained before cores "
                  "finished");
        RunResult r = collectRunResult(sys, name, opts.seed,
                                       /*measure_start=*/0);
        if (stats_out)
            sys.dumpStats(*stats_out);
        return r;
    }

    TraceReplay replay(trace_path);
    if (replay.numLanes() != config.topology.numCpus)
        fatal("trace has %u lanes but the system has %u CPUs",
              replay.numLanes(), config.topology.numCpus);
    System sys(config, replay);

    Tick measure_start = 0;
    sys.start();
    if (opts.warmupOps > 0 && opts.warmupOps < replay.maxLaneMemOps())
        scheduleWarmupCheck(
            sys, [&replay] { return replay.minOpsConsumed(); },
            opts.warmupOps, &measure_start);

    const std::uint64_t executed = sys.run(opts.maxEvents);
    if (executed >= opts.maxEvents)
        fatal("simulateReplay: event cap hit (%llu) — runaway "
              "simulation?",
              static_cast<unsigned long long>(opts.maxEvents));
    if (!sys.allCoresFinished())
        panic("simulateReplay: event queue drained before cores "
              "finished");
    RunResult r = collectRunResult(sys, name, opts.seed, measure_start);
    if (stats_out)
        sys.dumpStats(*stats_out);
    return r;
}

RunResult
collectRunResult(System &sys, const std::string &workload_name,
                 std::uint64_t seed, Tick measure_start)
{
    const SystemConfig &config = sys.config();
    RunResult r;
    r.workload = workload_name;
    r.regionBytes = config.cgct.enabled ? config.cgct.regionBytes : 0;
    r.seed = seed;
    r.cycles = sys.maxCoreClock() - measure_start;

    for (unsigned i = 0; i < sys.numCpus(); ++i) {
        const Node::Stats &ns = sys.node(i).stats();
        r.requestsTotal += ns.requestsTotal;
        r.broadcasts += ns.broadcasts;
        r.directs += ns.directs;
        r.locals += ns.localCompletes;
        r.writebacks += ns.writebacksIssued;
        for (std::size_t c = 0; c < RunResult::kNumCat; ++c) {
            r.broadcastsByCat[c] += ns.broadcastsByCat[c];
            r.directsByCat[c] += ns.directsByCat[c];
            r.localsByCat[c] += ns.localByCat[c];
        }
        r.inclusionWritebacks += ns.inclusionWritebacks;
        r.instructions += sys.core(i).instructions();

        if (auto *tracker = sys.node(i).tracker()) {
            if (auto *cgct = dynamic_cast<CgctController *>(tracker)) {
                const auto &rs = cgct->rca().stats();
                r.rcaEvictedEmpty += rs.evictedEmpty;
                r.rcaEvictedOne += rs.evictedOneLine;
                r.rcaEvictedTwo += rs.evictedTwoLines;
                r.rcaEvictedMore += rs.evictedMoreLines;
                r.rcaSelfInvalidations += rs.selfInvalidations;
                if (rs.lineCountSamples > 0) {
                    r.avgLinesPerEvictedRegion +=
                        static_cast<double>(rs.lineCountSum) /
                        static_cast<double>(rs.lineCountSamples);
                }
            }
        }
    }

    // Convert the accumulators into proper averages.
    {
        std::uint64_t probes = 0;
        std::uint64_t lat_count = 0;
        double lat_sum = 0.0;
        double misses = 0.0;
        for (unsigned i = 0; i < sys.numCpus(); ++i) {
            const Cache::Stats &l2s = sys.node(i).l2().stats();
            probes += l2s.hits + l2s.misses;
            misses += static_cast<double>(l2s.misses);
            lat_sum += static_cast<double>(sys.node(i).stats().memLatencySum);
            lat_count += sys.node(i).stats().memLatencyCount;
        }
        r.l2MissRatio = probes ? misses / static_cast<double>(probes) : 0.0;
        r.avgMissLatency = lat_count
                               ? lat_sum / static_cast<double>(lat_count)
                               : 0.0;
        r.avgLinesPerEvictedRegion /= sys.numCpus();
    }

    const Oracle &oracle = sys.oracle();
    r.oracleTotal = oracle.total();
    r.oracleUnnecessary = oracle.unnecessary();
    for (std::size_t c = 0; c < RunResult::kNumCat; ++c) {
        const auto &counts =
            oracle.category(static_cast<RequestCategory>(c));
        r.oracleTotalByCat[c] = counts.total;
        r.oracleUnnecessaryByCat[c] = counts.unnecessary;
    }

    r.avgBroadcastsPer100k =
        sys.bus().traffic().averagePerWindow(sys.eq().now());
    r.peakBroadcastsPer100k =
        static_cast<double>(sys.bus().traffic().peakWindowCount());
    r.cacheToCache = sys.bus().stats().cacheToCache;
    r.memorySupplied = sys.bus().stats().memorySupplied;
    r.topology = topologyKindName(config.interconnect.topology);
    r.nodes = config.topology.numCpus;
    r.localResolves = sys.bus().localDomainResolves();
    r.interChipBroadcasts = sys.bus().interChipBroadcasts();

    // Aggregate the observability histograms/distributions system-wide.
    {
        auto snapshotHist = [](std::string name, std::string desc,
                               const Histogram &h) {
            HistogramSnapshot s;
            s.name = std::move(name);
            s.desc = std::move(desc);
            s.bucketWidth = h.bucketWidth();
            s.samples = h.samples();
            s.sum = h.sum();
            s.buckets.resize(h.numBuckets());
            for (std::size_t i = 0; i < h.numBuckets(); ++i)
                s.buckets[i] = h.bucketCount(i);
            return s;
        };

        Histogram miss(Node::kMissLatencyBucketWidth,
                       Node::kMissLatencyBuckets);
        for (unsigned i = 0; i < sys.numCpus(); ++i)
            miss.merge(sys.node(i).missLatencyHistogram());
        r.histograms.push_back(snapshotHist(
            "node.miss_latency",
            "demand miss latency distribution (cycles)", miss));

        // Dedupe trackers: with sharedPerChip the chip's cores share one
        // controller, whose histograms must be counted once.
        std::vector<const CgctController *> ctrls;
        for (unsigned i = 0; i < sys.numCpus(); ++i) {
            const auto *c = dynamic_cast<const CgctController *>(
                sys.node(i).tracker());
            if (!c)
                continue;
            bool seen = false;
            for (const auto *s : ctrls)
                seen = seen || s == c;
            if (!seen)
                ctrls.push_back(c);
        }
        if (!ctrls.empty()) {
            Histogram lines = ctrls.front()->rca().evictedLinesHistogram();
            Distribution life = ctrls.front()->rca().regionLifetime();
            for (std::size_t i = 1; i < ctrls.size(); ++i) {
                lines.merge(ctrls[i]->rca().evictedLinesHistogram());
                life.merge(ctrls[i]->rca().regionLifetime());
            }
            r.histograms.push_back(snapshotHist(
                "rca.lines_at_eviction",
                "lines cached per region at eviction", lines));
            DistributionSnapshot d;
            d.name = "rca.region_lifetime";
            d.desc = "allocation-to-eviction region lifetime (cycles)";
            d.samples = life.samples();
            d.min = life.min();
            d.max = life.max();
            d.mean = life.mean();
            d.stddev = life.stddev();
            r.distributions.push_back(std::move(d));
        }
    }

    // End-of-run invariant sweep over every region still live anywhere.
    if (InvariantChecker *checker = sys.invariantChecker()) {
        const std::string err = checker->checkAll();
        if (!err.empty())
            fatal("end-of-run region invariant violation: %s",
                  err.c_str());
    }

    if (sys.traceSink().enabled()) {
        r.trace = std::make_shared<const std::vector<TraceEvent>>(
            sys.traceSink().takeEvents());
    }
    return r;
}

namespace {

/** The multi-seed chain: each run's seed derives from the previous one,
 * so the whole sequence is fixed by the base seed alone. */
std::vector<std::uint64_t>
seedChain(std::uint64_t base, unsigned n_seeds)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(n_seeds);
    std::uint64_t s = base;
    for (unsigned i = 0; i < n_seeds; ++i) {
        s = s * 2654435761ULL + 12345 + i;
        seeds.push_back(s);
    }
    return seeds;
}

} // namespace

std::vector<RunResult>
simulateSeeds(const SystemConfig &config, const WorkloadProfile &profile,
              RunOptions opts, unsigned n_seeds)
{
    std::vector<RunResult> out;
    out.reserve(n_seeds);
    for (std::uint64_t seed : seedChain(opts.seed, n_seeds)) {
        opts.seed = seed;
        out.push_back(simulateOnce(config, profile, opts));
    }
    return out;
}

std::vector<RunResult>
simulateSeedsParallel(const SystemConfig &config,
                      const WorkloadProfile &profile, RunOptions opts,
                      unsigned n_seeds, unsigned jobs)
{
    const std::vector<std::uint64_t> seeds = seedChain(opts.seed, n_seeds);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(n_seeds);
    ThreadPool pool(jobs);
    for (unsigned i = 0; i < n_seeds; ++i) {
        RunOptions run_opts = opts;
        run_opts.seed = seeds[i];
        futures.push_back(pool.submit([&config, &profile, run_opts] {
            return simulateOnce(config, profile, run_opts);
        }));
    }
    std::vector<RunResult> out;
    out.reserve(n_seeds);
    for (auto &f : futures)
        out.push_back(f.get());
    return out;
}

RunSummary
runtimeSummary(const std::vector<RunResult> &runs)
{
    std::vector<double> cycles;
    cycles.reserve(runs.size());
    for (const auto &r : runs)
        cycles.push_back(static_cast<double>(r.cycles));
    return summarize(cycles);
}

} // namespace cgct
