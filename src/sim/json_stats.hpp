/**
 * @file
 * Machine-readable results: serialize a RunResult (and batches of them)
 * to JSON for plotting scripts and regression tracking. No external JSON
 * dependency — the schema is flat and the writer is ~100 lines.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace cgct {

/** Serialize one run. @p indent prefixes every line (pretty printing). */
std::string toJson(const RunResult &result, const std::string &indent = "");

/** Serialize a batch as a JSON array. */
std::string toJson(const std::vector<RunResult> &results);

} // namespace cgct
