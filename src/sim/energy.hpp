/**
 * @file
 * Energy accounting for the memory system — the paper's Section 6:
 * "by reducing network activity [17], tag array lookups [15, 18], and
 * DRAM accesses power can be saved. However, the additional logic may
 * cancel out some of that savings."
 *
 * The model charges per-event energies (derived from CACTI-class numbers
 * for 130 nm-era structures; every weight is configurable) to the event
 * counts the simulator already collects, including the RCA's own lookup
 * and update energy so the "additional logic" cost appears explicitly.
 */

#pragma once

#include <cstdint>
#include <iosfwd>

namespace cgct {

class System;

/** Per-event energy costs in nanojoules. */
struct EnergyParams {
    /** One L2 tag-array lookup (local access or incoming snoop). */
    double l2TagLookupNj = 0.20;
    /** One L1 access. */
    double l1AccessNj = 0.05;
    /** One L2 data-array access (hit or fill). */
    double l2DataAccessNj = 0.60;
    /** Driving one request across the broadcast address network,
     *  per receiving agent. */
    double busBroadcastPerAgentNj = 0.80;
    /** A point-to-point direct request to one memory controller. */
    double directRequestNj = 0.90;
    /** One DRAM line access (read or write-back sink). */
    double dramAccessNj = 12.0;
    /** Moving one byte over the data network. */
    double dataPerByteNj = 0.01;
    /** One RCA lookup (the CGCT "additional logic"). */
    double rcaLookupNj = 0.12;
    /** One RCA allocation/update. */
    double rcaUpdateNj = 0.15;
};

/** Where the energy went. */
struct EnergyBreakdown {
    double tagLookups = 0.0;    ///< Snoop-induced L2 tag lookups.
    double cacheAccess = 0.0;   ///< Local L1/L2 activity.
    double network = 0.0;       ///< Broadcasts + direct requests.
    double dram = 0.0;
    double dataTransfer = 0.0;
    double rca = 0.0;           ///< The CGCT structure's own cost.

    double
    total() const
    {
        return tagLookups + cacheAccess + network + dram + dataTransfer +
               rca;
    }
};

/** Charge @p params against the event counts of a finished system. */
EnergyBreakdown computeEnergy(System &system,
                              const EnergyParams &params = {});

/** Pretty-print a breakdown (values in microjoules). */
void printEnergy(std::ostream &os, const EnergyBreakdown &e);

} // namespace cgct
