#include "sim/dma.hpp"

#include "snapshot/serializer.hpp"

namespace cgct {

DmaEngine::DmaEngine(EventQueue &eq, Interconnect &bus, const DmaParams &params,
                     const TopologyParams &topo, std::uint64_t seed)
    : eq_(eq), bus_(bus), params_(params), id_(dmaRequesterId(topo)),
      rng_(seed ^ 0xD1A5ULL)
{
}

void
DmaEngine::start(std::function<bool()> keep_running)
{
    keepRunning_ = std::move(keep_running);
    if (params_.enabled)
        scheduleNext();
}

void
DmaEngine::scheduleNext()
{
    // Exponential-ish spacing around the mean keeps transfers from
    // beating against workload phases.
    const Tick delay = rng_.nextGeometric(1.0 /
                                          static_cast<double>(
                                              params_.meanInterval));
    eq_.scheduleIn(delay, [this] {
        if (stopped_ || (keepRunning_ && !keepRunning_()))
            return;
        transfer();
        scheduleNext();
    });
}

void
DmaEngine::transfer()
{
    ++stats_.transfers;
    const bool is_read = rng_.chance(params_.readFraction);
    const std::uint64_t buffers = params_.targetBytes / params_.bufferBytes;
    const Addr base = params_.targetBase +
                      rng_.nextBelow(buffers) * params_.bufferBytes;

    for (Addr a = base; a < base + params_.bufferBytes; a += 64) {
        SystemRequest req;
        req.cpu = id_;
        // A DMA read must find dirty copies; a DMA write invalidates all
        // cached copies before memory is overwritten.
        req.type = is_read ? RequestType::Read : RequestType::Dcbi;
        req.lineAddr = a;
        if (is_read)
            ++stats_.readLines;
        else
            ++stats_.writeLines;
        bus_.broadcast(req, [this, is_read](const SnoopResponse &resp,
                                            Tick) {
            if (is_read && resp.line.anyDirty)
                ++stats_.dirtyHits;
        });
    }
}

void
DmaEngine::serialize(Serializer &s) const
{
    rng_.serialize(s);
    s.u64(stats_.transfers);
    s.u64(stats_.readLines);
    s.u64(stats_.writeLines);
    s.u64(stats_.dirtyHits);
}

void
DmaEngine::deserialize(SectionReader &r)
{
    rng_.deserialize(r);
    stats_.transfers = r.u64();
    stats_.readLines = r.u64();
    stats_.writeLines = r.u64();
    stats_.dirtyHits = r.u64();
}

void
DmaEngine::addStats(StatGroup &group) const
{
    group.addScalar("dma.transfers", "DMA buffer transfers issued",
                    &stats_.transfers);
    group.addScalar("dma.read_lines", "lines read from memory by DMA",
                    &stats_.readLines);
    group.addScalar("dma.write_lines", "lines written to memory by DMA",
                    &stats_.writeLines);
    group.addScalar("dma.dirty_hits",
                    "DMA reads that found a dirty cached copy",
                    &stats_.dirtyHits);
}

} // namespace cgct
