/**
 * @file
 * SMARTS-style statistical sampling (docs/SAMPLING.md): fast-forward the
 * workload under a warming mode that keeps the architectural state hot,
 * emit an in-memory CGCTSNAP checkpoint at the start of each of K evenly
 * spaced measurement windows, run every window in full detail from its
 * checkpoint (embarrassingly parallel — each window owns a private
 * System), and aggregate the per-window statistics into one RunResult
 * whose headline metrics carry 95% Student-t confidence intervals.
 *
 * Two warming modes:
 *
 *  - functional: caches, MOESI states, region trackers and prefetchers
 *    are updated on every access, but no timing events run — no bus
 *    arbitration, no MSHR occupancy, no latency. An order of magnitude
 *    faster than detailed simulation; the detailed window warms the
 *    timing state (it is tiny: bank cursors, tag-port busy ticks).
 *  - detailed: the full timing model fast-forwards between windows
 *    (no speedup; the reference mode for validating functional warming).
 *
 * Determinism: the warm phase is a single serial pass, every window
 * restores a byte-exact snapshot and runs under the deterministic
 * (tick, priority, seq) event contract, and aggregation walks windows
 * in index order — so a sampled run is byte-identical at any --jobs.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/confidence.hpp"
#include "sim/simulator.hpp"
#include "workload/profile.hpp"

namespace cgct {

/** How the state between measurement windows is kept warm. */
enum class WarmMode : std::uint8_t {
    Functional, ///< Architectural updates only, no timing (fast).
    Detailed,   ///< Full timing model between windows (validation).
};

/** Parse "functional"/"detailed"; false on anything else. */
bool parseWarmMode(const std::string &name, WarmMode *out);

/** Canonical CLI name of a warming mode. */
const char *warmModeName(WarmMode mode);

/** Knobs for one sampled simulation. */
struct SamplingOptions {
    /** Measurement windows (the paper-methodology K). 0 = sampling off.
     *  With a CI target this is the *starting* window count. */
    std::uint64_t windows = 8;
    /** Detailed ops per CPU measured in each window. */
    std::uint64_t windowOps = 1000;
    WarmMode warmMode = WarmMode::Functional;
    /** Worker threads for the windows (0 = hardware concurrency).
     *  Results are identical at any value. */
    unsigned jobs = 0;
    /**
     * Adaptive precision (docs/SAMPLING.md): when > 0, double the
     * window count until the relative 95% CI half-width of every
     * headline metric (cycles, avg miss latency, L2 miss ratio,
     * avoided fraction, broadcasts/100k) is <= this value — e.g. 0.05
     * for +/-5% — capped by maxWindows and the window geometry.
     */
    double ciTarget = 0.0;
    /** Hard cap on the adaptive window count (the K cap). */
    std::uint64_t maxWindows = 64;
};

/**
 * Run one sampled simulation: warm, checkpoint at the K window starts,
 * measure each window in detail, aggregate. The result's counters are
 * scaled estimates of the full measured run (span / (K * windowOps));
 * r.sampling carries the per-window summaries and CIs. fatal()s on
 * invalid geometry (windows * windowOps must fit in opsPerCpu -
 * warmupOps) and on options sampling cannot honor (DMA, trace capture).
 */
RunResult simulateSampled(const SystemConfig &config,
                          const WorkloadProfile &profile,
                          const RunOptions &opts,
                          const SamplingOptions &sopts);

} // namespace cgct
