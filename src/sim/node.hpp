/**
 * @file
 * A processor node (Figure 1 of the paper): the two L1 caches, the unified
 * L2 (the system's coherence point), the MSHR file, the stream prefetcher,
 * and — when CGCT is enabled — the Region Coherence Array controller that
 * routes requests directly to memory when the region state allows it.
 *
 * Coherence model: the bus resolution event is the ordering point; line
 * and region state changes are applied atomically there, while data
 * arrival only affects timing (readyTick on the line). Direct requests
 * apply their state changes at issue, which is safe because the region
 * protocol guarantees no other processor holds a conflicting copy.
 *
 * Request-path storage: a miss's completion context — the callback plus
 * what fillL1 needs — lives in a per-MSHR-slot Completion struct
 * (mshrCtx_) instead of being captured inside nested heap-allocated
 * closures; waiter queues (fill merges, the MSHR-full backlog, pending
 * region acquisitions) are pooled FIFOs keyed through open-addressed
 * tables. After the pools reach their high-water marks the request path
 * performs no allocations.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/addr_table.hpp"
#include "common/config.hpp"
#include "common/inline_function.hpp"
#include "common/pool_fifo.hpp"
#include "common/stats.hpp"
#include "core/cgct_controller.hpp"
#include "event/event_queue.hpp"
#include "interconnect/interconnect.hpp"
#include "interconnect/data_network.hpp"
#include "mem/address_map.hpp"
#include "mem/memory_controller.hpp"
#include "prefetch/stream_prefetcher.hpp"

namespace cgct {

class InvariantChecker;
class PdesCoordinator;
class TraceSink;

/** One processor node. */
class Node : public SnoopClient
{
  public:
    /**
     * Completion callback: @p ready is when the op's data is usable.
     * Move-only with inline storage (see InlineFunction); capacity covers
     * the core model's captures with room to spare.
     */
    static constexpr std::size_t kCompletionCapacity = 48;
    using CompletionFn = InlineFunction<void(Tick ready),
                                        kCompletionCapacity>;

    Node(CpuId cpu, const SystemConfig &config, EventQueue &eq,
         Interconnect &bus,
         DataNetwork &data_net, const AddressMap &map,
         std::vector<MemoryController *> mem_ctrls,
         std::shared_ptr<RegionTracker> tracker);

    /**
     * Perform a processor memory operation at local time @p now.
     * @return true if resolved synchronously (@p ready_out is set);
     *         false if @p done will be invoked when the op resolves.
     * @p done is consumed only on the asynchronous (false) path; a
     * synchronous return leaves the caller's callable untouched.
     */
    bool access(CpuOpKind kind, Addr addr, Tick now, Tick &ready_out,
                CompletionFn &&done);

    /** True while another outstanding miss can be accepted. */
    bool canAcceptMiss() const { return !mshr_.full(); }

    // SnoopClient interface (external requests arriving from the bus).
    CpuId cpuId() const override { return cpu_; }
    LineSnoopOutcome snoopLine(const SystemRequest &req) override;
    RegionSnoopBits snoopRegion(const SystemRequest &req,
                                bool requester_gets_exclusive) override;

    /** Side-effect-free L2 state probe (oracle, tests). */
    LineState peekLine(Addr addr) const;

    /**
     * Functional warming (docs/SAMPLING.md): perform one processor
     * memory operation with full architectural effect — cache contents,
     * MOESI states, region tracker, prefetcher — but zero timing: no
     * events, no bus arbitration, no MSHR occupancy, no latency. Every
     * request resolves synchronously at warm tick @p now; peer caches
     * are snooped through the warm snoop path, which applies the same
     * state transitions as a bus snoop without occupying tag ports.
     * Requires setWarmPeers() first and a node with nothing in flight.
     */
    void warmAccess(CpuOpKind kind, Addr addr, Tick now);

    /** All nodes of the warm system (including this one), in CPU order.
     *  Borrowed for the lifetime of the warming phase. */
    void setWarmPeers(const std::vector<Node *> *peers)
    {
        warmPeers_ = peers;
    }

    /** Region tracker (nullptr in the baseline configuration). */
    RegionTracker *tracker() { return tracker_.get(); }
    const RegionTracker *tracker() const { return tracker_.get(); }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    StreamPrefetcher &prefetcher() { return prefetcher_; }

    /**
     * Emit route-decision trace events to @p sink and forward it to the
     * region tracker (which emits region transitions and RCA evictions).
     */
    void setTraceSink(TraceSink *sink);

    /** Run @p checker after every locally-applied protocol transition. */
    void setInvariantChecker(InvariantChecker *checker)
    {
        checker_ = checker;
    }

    /**
     * Sharded-run wiring (docs/PDES.md): this node lives on shard
     * @p shard of @p pdes. Bus enqueues are deferred to the coordinator
     * instead of touching the (hub-owned) bus from a shard thread.
     */
    void setPdes(PdesCoordinator *pdes, unsigned shard)
    {
        pdes_ = pdes;
        pdesShard_ = shard;
    }

    /**
     * Enter the bus with @p req, enqueued at tick @p enq and issued (for
     * miss-latency accounting) at @p issued. Sequentially this is the
     * body of the enqueue event; in a sharded run the PdesCoordinator
     * calls it at the quantum barrier, replaying deferred enqueues in
     * the sequential order through the bus's logical-grant path.
     */
    void postBroadcast(const SystemRequest &req, Tick issued, Tick enq);

    /** Per-node request statistics, broken down for Figures 2 and 7. */
    struct Stats {
        static constexpr std::size_t kNumCat =
            static_cast<std::size_t>(RequestCategory::NumCategories);

        std::uint64_t requestsTotal = 0;     ///< All system requests.
        std::uint64_t broadcasts = 0;
        std::uint64_t directs = 0;
        std::uint64_t localCompletes = 0;
        std::uint64_t broadcastsByCat[kNumCat] = {};
        std::uint64_t directsByCat[kNumCat] = {};
        std::uint64_t localByCat[kNumCat] = {};
        std::uint64_t writebacksIssued = 0;
        std::uint64_t demandMisses = 0;
        std::uint64_t prefetchesIssued = 0;
        std::uint64_t upgradeRaces = 0;      ///< Upgrade lost the line.
        std::uint64_t inclusionWritebacks = 0; ///< From region flushes.
        std::uint64_t snoopsReceived = 0;
        std::uint64_t tagWaitCycles = 0;     ///< Local accesses stalled
                                             ///< behind snoop lookups.
        std::uint64_t memLatencySum = 0;     ///< Demand-miss latency.
        std::uint64_t memLatencyCount = 0;
    };

    const Stats &stats() const { return stats_; }
    void resetStats();
    void addStats(StatGroup &group) const;

    /** Demand-miss latency distribution (histogram geometry below). */
    const Histogram &missLatencyHistogram() const
    {
        return missLatencyHist_;
    }

    /** Miss-latency histogram geometry: 40 linear 50-cycle buckets. */
    static constexpr std::uint64_t kMissLatencyBucketWidth = 50;
    static constexpr std::size_t kMissLatencyBuckets = 40;

    /**
     * Verify structural invariants (tests): L1s inclusive under L2, and —
     * with CGCT — RCA inclusion over the L2 plus exact per-region line
     * counts. @return a description of the first violation, or empty.
     */
    std::string checkInvariants() const;

    /**
     * Checkpoint support: the three caches, the MSHR free list, the
     * prefetcher, the L2 tag-port cursor, the request statistics and the
     * miss-latency histogram. The region tracker is serialized separately
     * by the System (it may be shared between the cores of a chip).
     * Snapshots require quiescence — no in-flight misses, fill waiters,
     * postponed misses or pending region acquisitions; serialize()
     * panics otherwise.
     */
    void serialize(Serializer &s) const;
    void deserialize(SectionReader &r);

  private:
    /**
     * What happens when a request resolves: refresh the L1 (for demand
     * fills) and invoke the caller's callback. One per outstanding miss,
     * stored in mshrCtx_[slot] — the flattened form of the closures the
     * request path used to nest.
     */
    struct Completion {
        CompletionFn done;
        Addr addr = 0;
        CpuOpKind kind = CpuOpKind::Load;
        bool fill = false;               ///< Run fillL1 before done.
    };

    /** A request merged onto an in-flight fill for the same line. */
    struct Waiter {
        CompletionFn done;
        Addr addr = 0;
        CpuOpKind kind = CpuOpKind::Load;
        bool fill = false;
        bool replay = false;             ///< Re-run access() on wake.
    };

    /** A request postponed because the MSHR file was full. */
    struct PendingMiss {
        RequestType type = RequestType::Read;
        Addr lineAddr = 0;
        Completion c;
        bool isPrefetch = false;
        Tick queuedAt = 0;
    };

    /** A request waiting behind an in-flight region acquisition; its
     *  Completion stays in the MSHR slot claimed before dispatch. */
    struct RegionWaiter {
        RequestType type = RequestType::Read;
        Addr lineAddr = 0;
        bool isPrefetch = false;
        Tick queuedAt = 0;
    };

    /** Handle an access that reached the L2. */
    bool accessL2(CpuOpKind kind, Addr addr, Tick now, Tick &ready_out,
                  CompletionFn &&done);

    /** Issue (or queue) a request to the system. */
    void issueSystemRequest(RequestType type, Addr line_addr, Tick now,
                            Completion &&c, bool is_prefetch);

    /** The request, with an MSHR (if needed) already claimed. */
    void dispatchSystemRequest(RequestType type, Addr line_addr, Tick now,
                               bool is_prefetch);

    /** Handle a broadcast's snoop response (ordering-point event). */
    void handleBroadcastResponse(RequestType type, Addr line_addr,
                                 const SnoopResponse &resp,
                                 Tick data_ready);

    /** Issue a direct-to-memory request (region permission held). */
    void issueDirect(RequestType type, Addr line_addr, MemCtrlId mc,
                     Tick now, bool is_prefetch);

    /** Complete a request locally with no external request. */
    void completeLocally(RequestType type, Addr line_addr, Tick now);

    /** Install a line into the L2 (and bookkeeping around eviction). */
    void installL2Line(Addr line_addr, LineState state, Tick now,
                       Tick ready);

    /** Move/refresh the line into the right L1 after an L2 resolution. */
    void fillL1(CpuOpKind kind, Addr addr, Tick now, Tick ready);

    /** Evict a line from L2: back-invalidate L1s, write back if dirty. */
    void evictL2Line(Addr line_addr, LineState state, Tick now);

    /** Send a write-back for @p line_addr to the system. */
    void issueWriteback(Addr line_addr, Tick now);

    /** Region-eviction flush: push the region's lines out (inclusion). */
    void flushRegion(Addr region_addr, std::uint64_t region_bytes,
                     MemCtrlId mc, Tick now);

    /** Run the stream prefetcher after a demand L2 access. */
    void maybePrefetch(Addr line_addr, bool is_store, bool was_miss,
                       Tick now);

    /** Release an MSHR and start a queued request if one is waiting. */
    void releaseMshr(Addr line_addr);

    /** Move this line's Completion out of its MSHR slot (if any). */
    Completion grabMshrCtx(Addr line_addr);

    /** Run a Completion: optional L1 refresh, then the callback. */
    void runCompletion(Completion &c, Tick ready);

    /** Release + resolve: the common tail of broadcast completions. */
    void finishRequest(Addr line_addr, bool needs_mshr, Tick ready);

    /** Wake everything merged onto @p line_addr's fill. */
    void drainFillWaiters(Addr line_addr, Tick ready);

    /** The waiter list for @p line_addr, created if absent. */
    PoolFifo<Waiter>::List &waiterListFor(Addr line_addr);

    /** Record a completed demand miss's latency. */
    void noteMissLatency(Tick issued, Tick ready);

    // Functional-warming mirrors of the request path (docs/SAMPLING.md).
    // Each applies exactly the architectural transitions of its timing
    // twin, synchronously, with no events and no timing side effects.
    void warmL2Access(CpuOpKind kind, Addr addr, Tick now);
    void warmRequest(RequestType type, Addr line_addr, Tick now,
                     bool is_prefetch);
    void warmBroadcast(RequestType type, Addr line_addr, Tick now,
                       bool is_prefetch);
    void warmDirect(RequestType type, Addr line_addr, MemCtrlId mc,
                    Tick now);
    void warmLocalComplete(RequestType type, Addr line_addr, Tick now);
    void warmInstallL2Line(Addr line_addr, LineState state, Tick now);
    void warmEvictL2Line(Addr line_addr, LineState state, Tick now);
    void warmWriteback(Addr line_addr, Tick now);
    void warmMaybePrefetch(Addr line_addr, bool is_store, bool was_miss,
                           Tick now);
    /** Peer-side line snoop without the L2 tag-port occupancy. */
    LineSnoopOutcome warmSnoopLine(const SystemRequest &req);
    /** Peer-side region snoop at warm tick @p now. */
    RegionSnoopBits warmSnoopRegion(const SystemRequest &req,
                                    bool requester_gets_exclusive,
                                    Tick now);

    CpuId cpu_;
    const SystemConfig &config_;
    EventQueue &eq_;
    Interconnect &bus_;
    DataNetwork &dataNet_;
    const AddressMap &map_;
    std::vector<MemoryController *> memCtrls_;
    std::shared_ptr<RegionTracker> tracker_;

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    MshrFile mshr_;
    StreamPrefetcher prefetcher_;

    /** Per-MSHR-slot completion context, indexed by MshrFile slot. */
    std::vector<Completion> mshrCtx_;

    /** Waiters merged onto an in-flight fill, keyed by line address. */
    AddrTable<PoolFifo<Waiter>::List> fillWaiters_;
    PoolFifo<Waiter> waiterPool_;

    /** Requests postponed because the MSHR file was full. */
    PoolFifo<PendingMiss>::List pendingMisses_;
    PoolFifo<PendingMiss> pendingPool_;

    /**
     * Requests to a region whose first broadcast (the region acquisition)
     * is still in flight: they wait for the region snoop response instead
     * of broadcasting line by line. Keyed by region-aligned address.
     */
    AddrTable<PoolFifo<RegionWaiter>::List> pendingRegionAcq_;
    PoolFifo<RegionWaiter> regionWaiterPool_;
    /** Suppress re-marking acquisitions while draining a region queue. */
    bool drainingRegion_ = false;

    std::vector<PrefetchCandidate> prefetchScratch_;
    /** Region-flush collection scratch (invalidation mutates the array). */
    std::vector<std::pair<Addr, LineState>> flushScratch_;
    /** L2 tag port busy (incoming snoops) until this tick. */
    Tick l2TagBusy_ = 0;
    Stats stats_;
    Histogram missLatencyHist_{kMissLatencyBucketWidth,
                               kMissLatencyBuckets};
    TraceSink *trace_ = nullptr;
    InvariantChecker *checker_ = nullptr;
    /** Warm-phase peer nodes (null outside functional warming). */
    const std::vector<Node *> *warmPeers_ = nullptr;
    /** Sharded-run coordinator (null in sequential runs). */
    PdesCoordinator *pdes_ = nullptr;
    unsigned pdesShard_ = 0;
};

} // namespace cgct
