#include "sim/json_stats.hpp"

#include <sstream>

namespace cgct {

namespace {

/**
 * Tiny helper for the nested schema: tracks the current indent and
 * whether the previous entry needs a trailing comma. toJson() groups
 * related fields into per-component objects ("requests", "oracle", ...)
 * so consumers address stats by component rather than by a flat prefix.
 */
class Writer
{
  public:
    Writer(std::ostringstream &os, std::string indent)
        : os_(os), indent_(std::move(indent))
    {
    }

    void
    open(const char *name = nullptr)
    {
        sep();
        os_ << indent_;
        if (name)
            os_ << '"' << name << "\": ";
        os_ << "{";
        indent_ += "  ";
        fresh_ = true;
    }

    void
    close()
    {
        indent_.resize(indent_.size() - 2);
        os_ << "\n" << indent_ << "}";
        fresh_ = false;
    }

    void
    field(const char *name, double v)
    {
        sep();
        os_ << indent_ << '"' << name << "\": " << v;
    }

    void
    field(const char *name, std::uint64_t v)
    {
        sep();
        os_ << indent_ << '"' << name << "\": " << v;
    }

    void
    field(const char *name, const std::string &v)
    {
        sep();
        os_ << indent_ << '"' << name << "\": \"" << v << '"';
    }

    template <typename Seq>
    void
    array(const char *name, const Seq &a, std::size_t n)
    {
        sep();
        os_ << indent_ << '"' << name << "\": [";
        for (std::size_t i = 0; i < n; ++i)
            os_ << a[i] << (i + 1 < n ? ", " : "");
        os_ << "]";
    }

  private:
    void
    sep()
    {
        if (!fresh_)
            os_ << ",";
        os_ << "\n";
        fresh_ = false;
    }

    std::ostringstream &os_;
    std::string indent_;
    bool fresh_ = true;
};

} // namespace

std::string
toJson(const RunResult &r, const std::string &indent)
{
    constexpr std::size_t kCat = RunResult::kNumCat;
    std::ostringstream os;
    os << indent << "{";
    Writer w(os, indent + "  ");

    w.field("workload", r.workload);
    w.field("region_bytes", r.regionBytes);
    w.field("seed", r.seed);
    w.field("cycles", static_cast<std::uint64_t>(r.cycles));
    w.field("instructions", r.instructions);

    w.open("requests");
    w.field("total", r.requestsTotal);
    w.field("broadcasts", r.broadcasts);
    w.field("directs", r.directs);
    w.field("locals", r.locals);
    w.field("writebacks", r.writebacks);
    w.array("broadcasts_by_category", r.broadcastsByCat, kCat);
    w.array("directs_by_category", r.directsByCat, kCat);
    w.array("locals_by_category", r.localsByCat, kCat);
    w.field("avoided_fraction", r.avoidedFraction());
    w.close();

    w.open("oracle");
    w.field("total", r.oracleTotal);
    w.field("unnecessary", r.oracleUnnecessary);
    w.array("total_by_category", r.oracleTotalByCat, kCat);
    w.array("unnecessary_by_category", r.oracleUnnecessaryByCat, kCat);
    w.field("unnecessary_fraction", r.oracleUnnecessaryFraction());
    w.close();

    w.open("traffic");
    w.field("avg_broadcasts_per_100k", r.avgBroadcastsPer100k);
    w.field("peak_broadcasts_per_100k", r.peakBroadcastsPer100k);
    w.field("cache_to_cache", r.cacheToCache);
    w.field("memory_supplied", r.memorySupplied);
    w.close();

    w.open("interconnect");
    w.field("topology", r.topology);
    w.field("nodes", static_cast<std::uint64_t>(r.nodes));
    w.field("local_resolves", r.localResolves);
    w.field("interchip_broadcasts", r.interChipBroadcasts);
    w.close();

    w.open("memory");
    w.field("l2_miss_ratio", r.l2MissRatio);
    w.field("avg_miss_latency", r.avgMissLatency);
    w.close();

    if (r.sampling) {
        const SamplingInfo &s = *r.sampling;
        w.open("sampling");
        w.field("windows", s.windows);
        w.field("window_ops", s.windowOps);
        w.field("warm_mode", s.warmMode);
        w.field("span_ops", s.spanOps);
        w.field("sampled_ops", s.sampledOps);
        w.field("scale", s.scale);
        const struct {
            const char *name;
            const RunSummary *sum;
        } sums[] = {
            {"window_cycles", &s.cycles},
            {"avg_miss_latency", &s.avgMissLatency},
            {"l2_miss_ratio", &s.l2MissRatio},
            {"avoided_fraction", &s.avoidedFraction},
            {"avg_broadcasts_per_100k", &s.avgBroadcastsPer100k},
        };
        for (const auto &entry : sums) {
            w.open(entry.name);
            w.field("mean", entry.sum->mean);
            w.field("stddev", entry.sum->stddev);
            w.field("ci95_half", entry.sum->ci95Half);
            w.field("count", entry.sum->count);
            w.close();
        }
        w.close();
    }

    w.open("rca");
    w.field("evicted_empty", r.rcaEvictedEmpty);
    w.field("evicted_one", r.rcaEvictedOne);
    w.field("evicted_two", r.rcaEvictedTwo);
    w.field("evicted_more", r.rcaEvictedMore);
    w.field("self_invalidations", r.rcaSelfInvalidations);
    w.field("inclusion_writebacks", r.inclusionWritebacks);
    w.field("avg_lines_per_evicted_region", r.avgLinesPerEvictedRegion);
    w.close();

    w.open("histograms");
    for (const HistogramSnapshot &h : r.histograms) {
        w.open(h.name.c_str());
        w.field("bucket_width", h.bucketWidth);
        w.field("samples", h.samples);
        w.field("sum", h.sum);
        w.array("buckets", h.buckets, h.buckets.size());
        w.close();
    }
    w.close();

    w.open("distributions");
    for (const DistributionSnapshot &d : r.distributions) {
        w.open(d.name.c_str());
        w.field("samples", d.samples);
        w.field("min", d.min);
        w.field("max", d.max);
        w.field("mean", d.mean);
        w.field("stddev", d.stddev);
        w.close();
    }
    w.close();

    os << "\n" << indent << "}";
    return os.str();
}

std::string
toJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << toJson(results[i], "  ");
        os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "]\n";
    return os.str();
}

} // namespace cgct
