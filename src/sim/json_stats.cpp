#include "sim/json_stats.hpp"

#include <sstream>

namespace cgct {

namespace {

void
field(std::ostringstream &os, const std::string &indent, const char *name,
      double v, bool last = false)
{
    os << indent << "  \"" << name << "\": " << v << (last ? "\n" : ",\n");
}

void
field(std::ostringstream &os, const std::string &indent, const char *name,
      std::uint64_t v, bool last = false)
{
    os << indent << "  \"" << name << "\": " << v << (last ? "\n" : ",\n");
}

void
catArray(std::ostringstream &os, const std::string &indent,
         const char *name, const std::uint64_t (&a)[RunResult::kNumCat])
{
    os << indent << "  \"" << name << "\": [";
    for (std::size_t i = 0; i < RunResult::kNumCat; ++i)
        os << a[i] << (i + 1 < RunResult::kNumCat ? ", " : "");
    os << "],\n";
}

} // namespace

std::string
toJson(const RunResult &r, const std::string &indent)
{
    std::ostringstream os;
    os << indent << "{\n";
    os << indent << "  \"workload\": \"" << r.workload << "\",\n";
    field(os, indent, "region_bytes", r.regionBytes);
    field(os, indent, "seed", r.seed);
    field(os, indent, "cycles", static_cast<std::uint64_t>(r.cycles));
    field(os, indent, "instructions", r.instructions);
    field(os, indent, "requests_total", r.requestsTotal);
    field(os, indent, "broadcasts", r.broadcasts);
    field(os, indent, "directs", r.directs);
    field(os, indent, "locals", r.locals);
    field(os, indent, "writebacks", r.writebacks);
    catArray(os, indent, "broadcasts_by_category", r.broadcastsByCat);
    catArray(os, indent, "directs_by_category", r.directsByCat);
    catArray(os, indent, "locals_by_category", r.localsByCat);
    field(os, indent, "oracle_total", r.oracleTotal);
    field(os, indent, "oracle_unnecessary", r.oracleUnnecessary);
    catArray(os, indent, "oracle_total_by_category", r.oracleTotalByCat);
    catArray(os, indent, "oracle_unnecessary_by_category",
             r.oracleUnnecessaryByCat);
    field(os, indent, "avg_broadcasts_per_100k", r.avgBroadcastsPer100k);
    field(os, indent, "peak_broadcasts_per_100k",
          r.peakBroadcastsPer100k);
    field(os, indent, "l2_miss_ratio", r.l2MissRatio);
    field(os, indent, "avg_miss_latency", r.avgMissLatency);
    field(os, indent, "cache_to_cache", r.cacheToCache);
    field(os, indent, "memory_supplied", r.memorySupplied);
    field(os, indent, "rca_evicted_empty", r.rcaEvictedEmpty);
    field(os, indent, "rca_evicted_one", r.rcaEvictedOne);
    field(os, indent, "rca_evicted_two", r.rcaEvictedTwo);
    field(os, indent, "rca_evicted_more", r.rcaEvictedMore);
    field(os, indent, "rca_self_invalidations", r.rcaSelfInvalidations);
    field(os, indent, "inclusion_writebacks", r.inclusionWritebacks);
    field(os, indent, "avg_lines_per_evicted_region",
          r.avgLinesPerEvictedRegion);
    field(os, indent, "avoided_fraction", r.avoidedFraction());
    field(os, indent, "oracle_unnecessary_fraction",
          r.oracleUnnecessaryFraction(), /*last=*/true);
    os << indent << "}";
    return os.str();
}

std::string
toJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << toJson(results[i], "  ");
        os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "]\n";
    return os.str();
}

} // namespace cgct
