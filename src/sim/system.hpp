/**
 * @file
 * Assembles the full simulated machine of Table 3: event queue, address
 * map, per-chip memory controllers, data network, broadcast bus, one Node
 * (caches + RCA) and one CoreModel per processor, and the oracle.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/trace_sink.hpp"
#include "cpu/core_model.hpp"
#include "event/event_queue.hpp"
#include "interconnect/bus.hpp"
#include "interconnect/directory.hpp"
#include "interconnect/interconnect.hpp"
#include "interconnect/topology.hpp"
#include "interconnect/data_network.hpp"
#include "mem/address_map.hpp"
#include "mem/memory_controller.hpp"
#include "sim/dma.hpp"
#include "sim/invariants.hpp"
#include "sim/node.hpp"
#include "sim/oracle.hpp"

namespace cgct {

class PdesCoordinator;
class Serializer;
class Deserializer;

/** The whole machine. */
class System
{
  public:
    /**
     * @param config validated system configuration
     * @param source workload op streams (must outlive the system)
     * @param shards requested event-queue shard count (docs/PDES.md).
     *        1 (the default) is the sequential simulator. Larger values
     *        request a sharded run: chips are partitioned across shard
     *        queues that advance in bounded-lag quanta on a thread pool,
     *        with statistics byte-identical to the sequential run. The
     *        request engages only when the configuration supports it
     *        (see shards() below); otherwise the system silently — and
     *        deterministically — falls back to sequential execution.
     */
    System(const SystemConfig &config, OpSource &source,
           unsigned shards = 1);
    ~System();

    /** Kick off every core. */
    void start();

    /**
     * Execute pending events — the PDES quantum loop when sharded, the
     * plain event loop otherwise. @return events executed; a value >=
     * @p max_events means the runaway guard tripped (the system is NOT
     * drained and must not be serialized).
     */
    std::uint64_t run(std::uint64_t max_events);

    /**
     * Effective shard count: the constructor's request clamped to the
     * chip count, or 1 when sharding could not engage. Sharding
     * requires >= 2 chips, an OpSource whose lanes draw independently,
     * no CGCT (its shared-tracker routing is cross-CPU state outside
     * the bus ordering point), no trace sink, no invariant checker and
     * a nonzero snoop latency (the lookahead).
     */
    unsigned shards() const;

    EventQueue &eq() { return eq_; }
    const SystemConfig &config() const { return config_; }
    const AddressMap &addressMap() const { return map_; }
    Interconnect &bus() { return *bus_; }
    DataNetwork &dataNetwork() { return *dataNet_; }
    Oracle &oracle() { return *oracle_; }
    unsigned numCpus() const { return config_.topology.numCpus; }
    Node &node(unsigned i) { return *nodes_[i]; }
    CoreModel &core(unsigned i) { return *cores_[i]; }
    MemoryController &memCtrl(unsigned i) { return *memCtrls_[i]; }
    unsigned numMemCtrls() const
    {
        return static_cast<unsigned>(memCtrls_.size());
    }

    /** The DMA engine, or nullptr when config.dma.enabled is false. */
    DmaEngine *dma() { return dma_.get(); }

    /** The trace sink (enabled when config.obs.trace is set). */
    TraceSink &traceSink() { return trace_; }
    const TraceSink &traceSink() const { return trace_; }

    /**
     * The invariant checker, or nullptr when not active. Active when
     * config.obs.checkInvariants is set, and automatically in debug
     * (NDEBUG-undefined) builds whenever CGCT is enabled.
     */
    InvariantChecker *invariantChecker() { return checker_.get(); }

    bool allCoresFinished() const;
    Tick maxCoreClock() const;

    /** Cores blocked on a trace synchronization event (replay only). */
    unsigned coresWaitingOnSync() const;

    /** Reset all statistics at @p now (end of warmup). */
    void resetStats(Tick now);

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os) const;

    /**
     * Checkpoint support (see docs/SNAPSHOT.md). serializeState()
     * appends one section per component ("eq", "bus", "datanet",
     * "oracle", "dma", "memctrl<i>", "core<i>", "node<i>",
     * "tracker<i>") to @p s. It must be called on a drained system —
     * event queue empty, every core Finished, no requests in flight —
     * and panics otherwise. Chip-shared region trackers are serialized
     * once, under the section of the first core that owns them.
     */
    void serializeState(Serializer &s) const;

    /**
     * Restore component state from @p d (same section layout). The
     * system must be freshly constructed under the same configuration;
     * the caller is responsible for checking the config fingerprint
     * before calling this.
     */
    void restoreState(const Deserializer &d);

    /**
     * Resume execution for the next checkpoint phase after the op
     * source's pause point advanced: wakes every drained core and
     * restarts the DMA engine. Also used directly after restoreState().
     */
    void resumePhase();

  private:
    /** Shard index of @p cpu (valid only in sharded runs). */
    unsigned shardOfCpu(CpuId cpu) const;

    SystemConfig config_;
    EventQueue eq_;
    AddressMap map_;
    /** Shard event queues (empty in sequential runs). Owned here so
     *  they outlive the nodes and cores bound to them. */
    std::vector<std::unique_ptr<EventQueue>> shardQs_;
    std::vector<std::unique_ptr<MemoryController>> memCtrls_;
    std::unique_ptr<DataNetwork> dataNet_;
    std::unique_ptr<Interconnect> bus_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::unique_ptr<Oracle> oracle_;
    std::unique_ptr<DmaEngine> dma_;
    TraceSink trace_;
    std::unique_ptr<InvariantChecker> checker_;
    /** Declared last: joins its worker threads before anything it
     *  references is torn down. */
    std::unique_ptr<PdesCoordinator> pdes_;
};

} // namespace cgct
