/**
 * @file
 * Cross-layer invariant checker: validates the seven-state region
 * protocol against ground-truth cache contents at every transition.
 *
 * The region states are *summaries* of line state — "DI" asserts that no
 * other processor caches any line of the region — so a divergence between
 * an RCA entry and what the L2 arrays actually hold is a protocol bug
 * even if the simulation happens to produce plausible numbers. The
 * checker makes that class of bug a hard failure instead of a silently
 * wrong result.
 *
 * Invariants checked per region, per tracker (chip when sharedPerChip):
 *  A. exclusive (CI/DI): no node outside the tracker's chip caches any
 *     line of the region;
 *  B. externally clean (CC/DC): outside nodes hold no E/M/O lines
 *     (Exclusive counts — it can silently become Modified);
 *  C. locally clean (CI/CC/CD): the tracker's own nodes hold no E/M/O
 *     lines;
 *  D. the entry's line count equals the lines actually cached by the
 *     tracker's nodes;
 *  E. a cached line implies a valid RCA entry for its region (inclusion).
 *
 * With a filtered interconnect topology (hier / dir, docs/TOPOLOGY.md)
 * the checker additionally proves the filter state conservative against
 * the same L2 ground truth — these hold per snoop domain, without
 * assuming a single global bus:
 *  F. presence coverage: every processor caching a line of a region is
 *     set in the topology's presence mask for that region, and every
 *     chip with a valid RCA entry for the region is fully covered (its
 *     cores can direct-fill through the entry without a traversal);
 *  G. directory coverage: every processor caching a line is in the
 *     line's sharer vector or the region's presence mask.
 *
 * Activation: `cgct_sim --check-invariants`, or automatically in debug
 * (NDEBUG-undefined) builds when CGCT is enabled. All lookups use the
 * side-effect-free peek paths, so enabling the checker never perturbs
 * the statistics an experiment records.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace cgct {

class CgctController;
class EventQueue;
class Interconnect;
class Node;

/** Region-protocol-vs-cache-contents cross validator. */
class InvariantChecker
{
  public:
    /**
     * @param config the system configuration (region geometry)
     * @param nodes  every processor node, in CPU order
     */
    InvariantChecker(const SystemConfig &config,
                     std::vector<const Node *> nodes);

    /**
     * Check every invariant for the region containing @p addr.
     * @return a description of the first violation, or empty.
     */
    std::string checkRegion(Addr addr) const;

    /**
     * Check every region present in any RCA or any L2.
     * @return a description of the first violation, or empty.
     */
    std::string checkAll() const;

    /**
     * Transition hook: re-validate the region touched by a protocol
     * transition and fatal() with @p site on a violation. Wired to the
     * bus post-resolve hook and the node's direct/local/flush paths.
     */
    void onTransition(Addr addr, const char *site);

    /** Number of per-transition checks executed (tests, reporting). */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Let failure reports name the simulated tick (wired by System). */
    void setEventQueue(const EventQueue *eq) { eq_ = eq; }

    /**
     * Attach the interconnect so invariants F/G can cross-validate its
     * presence / sharer tracking against L2 ground truth (wired by
     * System; a flat bus tracks nothing and the checks are skipped).
     */
    void setInterconnect(const Interconnect *ic) { interconnect_ = ic; }

    /**
     * Invariant F/G alone for the region containing @p addr, non-fatal
     * (used by the injected-corruption test and checkRegion()).
     * @return a description of the first violation, or empty.
     */
    std::string checkCoverage(Addr addr) const;

    /**
     * Record the most recent checkpoint written (snapshot harness), so
     * an invariant failure can point at the nearest restore point:
     * replay the failing window with
     * `cgct_sim --restore <path> --trace out.jsonl --check-invariants`.
     */
    void noteCheckpoint(const std::string &path, Tick tick);

  private:
    /** Nodes sharing one CGCT controller (one entry per chip when the
     *  RCA is shared; one per CPU otherwise). */
    struct Group {
        const CgctController *ctrl = nullptr;
        std::vector<std::size_t> nodeIdx;
    };

    const SystemConfig &config_;
    std::vector<const Node *> nodes_;
    std::vector<Group> groups_;
    std::uint64_t checksRun_ = 0;
    const EventQueue *eq_ = nullptr;
    const Interconnect *interconnect_ = nullptr;
    std::string lastCheckpointPath_;
    Tick lastCheckpointTick_ = 0;
    bool haveCheckpoint_ = false;
};

} // namespace cgct
