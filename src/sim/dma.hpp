/**
 * @file
 * DMA engine: models the I/O traffic of Table 3's 512-byte DMA buffers.
 * The paper's introduction lists "non-cacheable I/O data" among the
 * requests that do not need to be seen by other processors' caches; this
 * engine injects that traffic so systems can be studied under I/O load.
 *
 * A transfer moves one buffer (bufferBytes, line by line) between memory
 * and the I/O bridge: DMA reads snoop for dirty copies (a processor may
 * hold newer data); DMA writes invalidate cached copies before memory is
 * overwritten. The engine has no cache and no RCA — its requests always
 * use the broadcast network, in both baseline and CGCT systems.
 */

#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "event/event_queue.hpp"
#include "interconnect/interconnect.hpp"

namespace cgct {

/** The requester id used by the I/O bridge on the bus. */
constexpr CpuId
dmaRequesterId(const TopologyParams &topo)
{
    return static_cast<CpuId>(topo.numCpus);
}

/** One DMA engine (I/O bridge). */
class DmaEngine
{
  public:
    DmaEngine(EventQueue &eq, Interconnect &bus, const DmaParams &params,
              const TopologyParams &topo, std::uint64_t seed);

    /**
     * Schedule the first transfer. @p keep_running is polled before every
     * transfer; when it returns false the engine stops rescheduling so
     * the event queue can drain (e.g. once all cores finished).
     */
    void start(std::function<bool()> keep_running = nullptr);

    /** Stop issuing new transfers (in-flight ones drain). */
    void stop() { stopped_ = true; }

    struct Stats {
        std::uint64_t transfers = 0;
        std::uint64_t readLines = 0;
        std::uint64_t writeLines = 0;
        std::uint64_t dirtyHits = 0;   ///< Reads that found dirty data.
    };

    const Stats &stats() const { return stats_; }
    void addStats(StatGroup &group) const;

    /**
     * Checkpoint support: the RNG stream and counters. The pending
     * transfer event is not saved — scheduleNext() draws the delay
     * *before* checking keep_running, so the aborted event's draw is
     * already in the serialized RNG state and start() after restore
     * re-creates the identical schedule.
     */
    void serialize(Serializer &s) const;
    void deserialize(SectionReader &r);

  private:
    void scheduleNext();
    void transfer();

    EventQueue &eq_;
    Interconnect &bus_;
    DmaParams params_;
    CpuId id_;
    Rng rng_;
    bool stopped_ = false;
    std::function<bool()> keepRunning_;
    Stats stats_;
};

} // namespace cgct
