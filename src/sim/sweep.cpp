#include "sim/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <future>
#include <ostream>

#include "common/thread_pool.hpp"

namespace cgct {

std::vector<SweepCell>
SweepSpec::expand() const
{
    std::vector<SweepCell> cells;
    cells.reserve(profiles.size() * regionSizes.size() * seedsPerCell);
    for (const WorkloadProfile *profile : profiles) {
        for (std::uint64_t region : regionSizes) {
            // The seed chain restarts from the base seed in every cell
            // group, exactly like the serial sweep did.
            std::uint64_t seed = baseSeed;
            for (unsigned s = 0; s < seedsPerCell; ++s) {
                seed = nextSweepSeed(seed);
                SweepCell cell;
                cell.index = cells.size();
                cell.profile = profile;
                cell.regionBytes = region;
                cell.seed = seed;
                cells.push_back(cell);
            }
        }
    }
    return cells;
}

SweepRunner::SweepRunner(SweepSpec spec, unsigned jobs)
    : spec_(std::move(spec)),
      jobs_(jobs ? jobs : ThreadPool::defaultThreads())
{
    cells_ = spec_.expand();
}

std::vector<RunResult>
SweepRunner::run(const ResultFn &on_result, const ProgressFn &on_progress)
{
    const std::size_t total = cells_.size();
    std::vector<std::future<RunResult>> futures;
    futures.reserve(total);

    std::atomic<std::size_t> completed{0};
    ThreadPool pool(jobs_);
    for (const SweepCell &cell : cells_) {
        futures.push_back(pool.submit([this, &cell, &completed,
                                       &on_progress, total] {
            const SystemConfig config =
                cell.regionBytes
                    ? spec_.baseConfig.withCgct(cell.regionBytes)
                    : spec_.baseConfig;
            RunOptions opts = spec_.opts;
            opts.seed = cell.seed;
            RunResult r = simulateOnce(config, *cell.profile, opts);
            if (on_progress)
                on_progress(completed.fetch_add(1) + 1, total, cell);
            return r;
        }));
    }

    std::vector<RunResult> results;
    results.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        results.push_back(futures[i].get());
        if (on_result)
            on_result(cells_[i], results.back());
    }
    return results;
}

void
writeSweepCsvHeader(std::ostream &os)
{
    os << "workload,region_bytes,seed,cycles,instructions,"
          "requests,broadcasts,directs,locals,writebacks,"
          "avoided_fraction,oracle_unnecessary_fraction,"
          "avg_bcast_per_100k,peak_bcast_per_100k,l2_miss_ratio,"
          "avg_miss_latency\n";
}

void
writeSweepCsvRow(std::ostream &os, const RunResult &r)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,"
                  "%.6f,%.2f,%.2f,%.6f,%.2f\n",
                  r.workload.c_str(),
                  static_cast<unsigned long long>(r.regionBytes),
                  static_cast<unsigned long long>(r.seed),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.instructions),
                  static_cast<unsigned long long>(r.requestsTotal),
                  static_cast<unsigned long long>(r.broadcasts),
                  static_cast<unsigned long long>(r.directs),
                  static_cast<unsigned long long>(r.locals),
                  static_cast<unsigned long long>(r.writebacks),
                  r.avoidedFraction(), r.oracleUnnecessaryFraction(),
                  r.avgBroadcastsPer100k, r.peakBroadcastsPer100k,
                  r.l2MissRatio, r.avgMissLatency);
    os << buf;
}

} // namespace cgct
