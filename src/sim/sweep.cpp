#include "sim/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <future>
#include <ostream>

#include "common/thread_pool.hpp"

namespace cgct {

std::vector<SweepCell>
SweepSpec::expand() const
{
    std::vector<SweepCell> cells;
    cells.reserve(profiles.size() * regionSizes.size() * seedsPerCell);
    for (const WorkloadProfile *profile : profiles) {
        for (std::uint64_t region : regionSizes) {
            // The seed chain restarts from the base seed in every cell
            // group, exactly like the serial sweep did.
            std::uint64_t seed = baseSeed;
            for (unsigned s = 0; s < seedsPerCell; ++s) {
                seed = nextSweepSeed(seed);
                SweepCell cell;
                cell.index = cells.size();
                cell.profile = profile;
                cell.regionBytes = region;
                cell.seed = seed;
                cells.push_back(cell);
            }
        }
    }
    return cells;
}

SweepRunner::SweepRunner(SweepSpec spec, unsigned jobs)
    : spec_(std::move(spec)),
      jobs_(jobs ? jobs : ThreadPool::defaultThreads())
{
    cells_ = spec_.expand();
}

std::vector<RunResult>
SweepRunner::run(const ResultFn &on_result, const ProgressFn &on_progress)
{
    return runResumable(ResumeHooks{}, on_result, on_progress).results;
}

SweepOutcome
SweepRunner::runResumable(const ResumeHooks &hooks,
                          const ResultFn &on_result,
                          const ProgressFn &on_progress)
{
    const std::size_t total = cells_.size();
    SweepOutcome out;
    out.total = total;

    // Snapshot the journal's pre-existing entries by value before any
    // worker starts: hooks.onCompleted typically appends to the very map
    // hooks.cached points at (under the journal's own lock), and the
    // emission loop below must not read a std::map other threads are
    // concurrently inserting into.
    std::map<std::uint64_t, RunResult> cached;
    if (hooks.cached)
        cached = *hooks.cached;

    std::size_t n_cached = 0;
    for (const auto &kv : cached)
        if (kv.first < total)
            ++n_cached;

    // Every cell keeps its slot so emission stays in cell order; cached
    // cells simply have no future. A skipped flag (set by the worker
    // before the future resolves, so the get() below synchronizes it)
    // marks cells abandoned after a stop request.
    std::vector<std::future<RunResult>> futures(total);
    std::vector<char> skipped(total, 0);
    std::atomic<std::size_t> completed{n_cached};
    ThreadPool pool(jobs_);
    for (const SweepCell &cell : cells_) {
        if (cached.count(cell.index))
            continue;
        futures[cell.index] = pool.submit([this, &cell, &completed,
                                           &hooks, &skipped, &on_progress,
                                           total] {
            if (hooks.stopRequested && hooks.stopRequested()) {
                skipped[cell.index] = 1;
                return RunResult{};
            }
            const SystemConfig config =
                cell.regionBytes
                    ? spec_.baseConfig.withCgct(cell.regionBytes)
                    : spec_.baseConfig;
            RunOptions opts = spec_.opts;
            opts.seed = cell.seed;
            RunResult r;
            if (spec_.sampled) {
                // Cells are the unit of parallelism; the windows inside
                // one cell run serially (no nested pools).
                SamplingOptions sopts = spec_.sampling;
                sopts.jobs = 1;
                r = simulateSampled(config, *cell.profile, opts, sopts);
            } else {
                r = simulateOnce(config, *cell.profile, opts);
            }
            if (hooks.onCompleted)
                hooks.onCompleted(cell, r);
            const std::size_t done = completed.fetch_add(1) + 1;
            if (on_progress)
                on_progress(done, total, cell);
            return r;
        });
    }

    out.results.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        RunResult r;
        if (cached.count(i)) {
            r = cached.at(i);
        } else {
            r = futures[i].get();
            if (skipped[i]) {
                out.interrupted = true;
                break;
            }
        }
        out.results.push_back(std::move(r));
        if (on_result)
            on_result(cells_[i], out.results.back());
    }

    // Join the stragglers (completed-out-of-order or skipped cells past
    // the break) before the pool unwinds.
    for (auto &f : futures)
        if (f.valid())
            f.wait();
    out.completedCells = completed.load();
    return out;
}

void
writeSweepCsvHeader(std::ostream &os, bool sampled, bool topo)
{
    os << "workload,region_bytes,seed,cycles,instructions,"
          "requests,broadcasts,directs,locals,writebacks,"
          "avoided_fraction,oracle_unnecessary_fraction,"
          "avg_bcast_per_100k,peak_bcast_per_100k,l2_miss_ratio,"
          "avg_miss_latency";
    if (sampled)
        os << ",windows,window_ops,warm_mode,window_cycles_mean,"
              "window_cycles_ci95,avoided_fraction_ci95,"
              "l2_miss_ratio_ci95,avg_miss_latency_ci95,"
              "avg_bcast_per_100k_ci95";
    if (topo)
        os << ",topology,nodes,local_resolves,interchip_broadcasts";
    os << "\n";
}

void
writeSweepCsvRow(std::ostream &os, const RunResult &r, bool sampled,
                 bool topo)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,"
                  "%.6f,%.2f,%.2f,%.6f,%.2f",
                  r.workload.c_str(),
                  static_cast<unsigned long long>(r.regionBytes),
                  static_cast<unsigned long long>(r.seed),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.instructions),
                  static_cast<unsigned long long>(r.requestsTotal),
                  static_cast<unsigned long long>(r.broadcasts),
                  static_cast<unsigned long long>(r.directs),
                  static_cast<unsigned long long>(r.locals),
                  static_cast<unsigned long long>(r.writebacks),
                  r.avoidedFraction(), r.oracleUnnecessaryFraction(),
                  r.avgBroadcastsPer100k, r.peakBroadcastsPer100k,
                  r.l2MissRatio, r.avgMissLatency);
    os << buf;
    if (sampled) {
        // A full-detail result in a sampled sweep (shouldn't happen, but
        // a resumed journal could mix) pads with empty CI fields.
        if (r.sampling) {
            const SamplingInfo &s = *r.sampling;
            std::snprintf(buf, sizeof(buf),
                          ",%llu,%llu,%s,%.2f,%.2f,%.6f,%.6f,%.2f,%.2f",
                          static_cast<unsigned long long>(s.windows),
                          static_cast<unsigned long long>(s.windowOps),
                          s.warmMode.c_str(), s.cycles.mean,
                          s.cycles.ci95Half, s.avoidedFraction.ci95Half,
                          s.l2MissRatio.ci95Half,
                          s.avgMissLatency.ci95Half,
                          s.avgBroadcastsPer100k.ci95Half);
            os << buf;
        } else {
            os << ",,,,,,,,,";
        }
    }
    if (topo) {
        std::snprintf(buf, sizeof(buf), ",%s,%u,%llu,%llu",
                      r.topology.c_str(), r.nodes,
                      static_cast<unsigned long long>(r.localResolves),
                      static_cast<unsigned long long>(r.interChipBroadcasts));
        os << buf;
    }
    os << "\n";
}

} // namespace cgct
