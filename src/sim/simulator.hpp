/**
 * @file
 * Run harness: builds a System around a synthetic workload, warms it up,
 * measures, and returns a RunResult with everything the benches need to
 * reproduce the paper's figures. Multi-seed helpers implement the paper's
 * variability methodology (several perturbed runs, 95% confidence
 * intervals, after Alameldeen et al. [27]).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/confidence.hpp"
#include "common/trace_sink.hpp"
#include "common/types.hpp"
#include "workload/profile.hpp"

namespace cgct {

/** A named histogram copied out of the finished system. */
struct HistogramSnapshot {
    std::string name;
    std::string desc;
    std::uint64_t bucketWidth = 0;
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    /** Per-bucket counts; the last bucket is the overflow bucket. */
    std::vector<std::uint64_t> buckets;
};

/** A named distribution (moments) copied out of the finished system. */
struct DistributionSnapshot {
    std::string name;
    std::string desc;
    std::uint64_t samples = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/** Knobs for one simulation. */
struct RunOptions {
    std::uint64_t opsPerCpu = 200000;
    std::uint64_t warmupOps = 40000;   ///< 0 disables warmup reset.
    std::uint64_t seed = 1;
    /** Hard event cap (runaway guard). */
    std::uint64_t maxEvents = 2000000000ULL;
    /**
     * Event-queue shards for this run (docs/PDES.md). 1 = sequential;
     * larger values request a parallel (PDES) run with byte-identical
     * statistics, silently falling back to sequential when the
     * configuration does not support sharding (see System::shards()).
     * Not part of SystemConfig: the shard count affects wall-clock
     * only, never results, so snapshots and sweep rows ignore it.
     */
    unsigned shards = 1;
    /**
     * When set, tee every op the simulation consumes into a v2 trace
     * file at this path (TraceCapture). Replaying the capture under
     * the same configuration reproduces the run's statistics
     * byte-for-byte (see docs/TRACE_FORMAT.md).
     */
    std::string capturePath;
};

/**
 * Per-window summaries of a sampled run (docs/SAMPLING.md). Attached to
 * RunResult when the run was produced by simulateSampled(); each
 * RunSummary is over the K per-window measurements, so ci95Half is the
 * 95% Student-t half-width an error bar should show.
 */
struct SamplingInfo {
    std::uint64_t windows = 0;      ///< Measurement windows (K).
    std::uint64_t windowOps = 0;    ///< Detailed ops per CPU per window.
    std::string warmMode;           ///< "functional" or "detailed".
    std::uint64_t spanOps = 0;      ///< Post-warmup ops represented.
    std::uint64_t sampledOps = 0;   ///< Ops measured in detail (K * w).
    double scale = 1.0;             ///< spanOps / sampledOps.

    // Per-window summaries (mean / stddev / 95% CI over the K windows).
    RunSummary cycles;              ///< Detailed cycles per window.
    RunSummary avgMissLatency;
    RunSummary l2MissRatio;
    RunSummary avoidedFraction;
    RunSummary avgBroadcastsPer100k;
};

/** Everything measured in one run. */
struct RunResult {
    static constexpr std::size_t kNumCat =
        static_cast<std::size_t>(RequestCategory::NumCategories);

    std::string workload;
    std::uint64_t regionBytes = 0;   ///< 0 = baseline (CGCT off).
    std::uint64_t seed = 0;          ///< Seed that produced this run.

    Tick cycles = 0;                 ///< Measured runtime.
    std::uint64_t instructions = 0;  ///< Total retired, all CPUs.

    // Request routing, summed over processors (measured window).
    std::uint64_t requestsTotal = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t directs = 0;
    std::uint64_t locals = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t broadcastsByCat[kNumCat] = {};
    std::uint64_t directsByCat[kNumCat] = {};
    std::uint64_t localsByCat[kNumCat] = {};

    // Oracle (Figure 2), from the same run.
    std::uint64_t oracleTotal = 0;
    std::uint64_t oracleUnnecessary = 0;
    std::uint64_t oracleTotalByCat[kNumCat] = {};
    std::uint64_t oracleUnnecessaryByCat[kNumCat] = {};

    // Traffic (Figure 10).
    double avgBroadcastsPer100k = 0.0;
    double peakBroadcastsPer100k = 0.0;

    // Interconnect topology (docs/TOPOLOGY.md). `topology` names the
    // organization ("bus" / "hier" / "dir"), `nodes` the processor
    // count; the two counters split the topology's requests into those
    // resolved inside the requester's snoop domain and those that
    // occupied the inter-chip level (on the flat bus every broadcast
    // does — the scaling figure's headline metric).
    std::string topology = "bus";
    unsigned nodes = 4;
    std::uint64_t localResolves = 0;
    std::uint64_t interChipBroadcasts = 0;

    // Memory behavior.
    double l2MissRatio = 0.0;
    double avgMissLatency = 0.0;
    std::uint64_t cacheToCache = 0;
    std::uint64_t memorySupplied = 0;

    // RCA behavior (Section 3.2), cumulative over the whole run.
    std::uint64_t rcaEvictedEmpty = 0;
    std::uint64_t rcaEvictedOne = 0;
    std::uint64_t rcaEvictedTwo = 0;
    std::uint64_t rcaEvictedMore = 0;
    std::uint64_t rcaSelfInvalidations = 0;
    std::uint64_t inclusionWritebacks = 0;
    double avgLinesPerEvictedRegion = 0.0;

    // Observability: histograms/distributions aggregated over the system
    // (node.miss_latency is window-reset at warmup; the rca.* entries are
    // cumulative over the whole run, like the RCA scalars above).
    std::vector<HistogramSnapshot> histograms;
    std::vector<DistributionSnapshot> distributions;

    /** Captured trace events (only when config.obs.trace was set).
     *  Shared so copying RunResult around the sweep stays cheap. */
    std::shared_ptr<const std::vector<TraceEvent>> trace;

    /** Per-window CIs when this result came from a sampled run
     *  (simulateSampled); null for full-detail runs. Shared for the
     *  same reason as the trace above. */
    std::shared_ptr<const SamplingInfo> sampling;

    /** Fraction of requests that avoided a broadcast (direct + local). */
    double
    avoidedFraction() const
    {
        return requestsTotal
                   ? static_cast<double>(directs + locals) /
                         static_cast<double>(requestsTotal)
                   : 0.0;
    }

    /** Oracle: fraction of broadcasts that were unnecessary. */
    double
    oracleUnnecessaryFraction() const
    {
        return oracleTotal
                   ? static_cast<double>(oracleUnnecessary) /
                         static_cast<double>(oracleTotal)
                   : 0.0;
    }
};

/** Run one simulation. */
RunResult simulateOnce(const SystemConfig &config,
                       const WorkloadProfile &profile,
                       const RunOptions &opts);

class System;
class SyntheticWorkload;

/**
 * Replay a recorded trace (either format version) to completion on
 * @p config and return the full RunResult, exactly as simulateOnce()
 * would for a generated workload. v2 traces stream through the mmap
 * replayer with their synchronization events re-created; v1 traces
 * load eagerly. opts.opsPerCpu is ignored (the trace defines the
 * stream); opts.warmupOps applies to v2 replays only (v1 traces have
 * no per-lane progress tracking). When @p stats_out is non-null the
 * full component statistics are dumped to it before the system is torn
 * down (the CLI's --stats).
 */
RunResult simulateReplay(const SystemConfig &config,
                         const std::string &trace_path,
                         const RunOptions &opts,
                         std::ostream *stats_out = nullptr);

/**
 * Assemble a RunResult from a finished (fully drained) system: request
 * routing, oracle verdicts, traffic, RCA behavior, histograms, the
 * end-of-run invariant sweep, and the captured trace. Shared by
 * simulateOnce(), simulateReplay() and the checkpoint harness
 * (snapshot/snapshot.hpp). @p workload_name labels the result (a
 * profile name, or "trace:<path>" for replays).
 */
RunResult collectRunResult(System &sys, const std::string &workload_name,
                           std::uint64_t seed, Tick measure_start);

/**
 * Arm the periodic warmup check: every 5000 ticks, test whether
 * @p min_ops (the fewest ops any CPU has consumed — minOpsDrawn() for
 * the generator, minOpsConsumed() for a trace replay) has reached
 * @p warmup_ops, and reset the measurement statistics (recording the
 * tick in @p measure_start) once it has. The event stops rescheduling
 * when every core is finished — at a checkpoint drain as well as at the
 * end of the run — so the checkpoint harness re-arms it each phase and
 * uses @p done (may be null) to know whether the reset already
 * happened.
 */
void scheduleWarmupCheck(System &sys,
                         std::function<std::uint64_t()> min_ops,
                         std::uint64_t warmup_ops, Tick *measure_start,
                         bool *done = nullptr);

/** Run @p n_seeds simulations differing only in seed. */
std::vector<RunResult> simulateSeeds(const SystemConfig &config,
                                     const WorkloadProfile &profile,
                                     RunOptions opts, unsigned n_seeds);

/**
 * Like simulateSeeds() — same seed chain, same result order — but runs
 * the seeds concurrently on @p jobs worker threads (0 = hardware
 * concurrency). Every run owns its simulation state, so the results are
 * identical to the serial helper at any job count.
 */
std::vector<RunResult> simulateSeedsParallel(const SystemConfig &config,
                                             const WorkloadProfile &profile,
                                             RunOptions opts,
                                             unsigned n_seeds,
                                             unsigned jobs);

/** Summarize the runtimes (cycles) of a batch of runs. */
RunSummary runtimeSummary(const std::vector<RunResult> &runs);

} // namespace cgct
