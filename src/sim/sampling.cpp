#include "sim/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <vector>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/system.hpp"
#include "snapshot/serializer.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/generator.hpp"

namespace cgct {

bool
parseWarmMode(const std::string &name, WarmMode *out)
{
    if (name == "functional") {
        *out = WarmMode::Functional;
        return true;
    }
    if (name == "detailed") {
        *out = WarmMode::Detailed;
        return true;
    }
    return false;
}

const char *
warmModeName(WarmMode mode)
{
    return mode == WarmMode::Functional ? "functional" : "detailed";
}

namespace {

/** The window-start op counts: K points evenly spread over the
 *  post-warmup span, the first right at the end of warmup. */
std::vector<std::uint64_t>
windowStarts(std::uint64_t warmup, std::uint64_t span, std::uint64_t k)
{
    std::vector<std::uint64_t> starts;
    starts.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i)
        starts.push_back(warmup + span * i / k);
    return starts;
}

/** Serialize the quiescent warm system + workload into CGCTSNAP bytes. */
std::vector<std::uint8_t>
makeWarmSnapshot(System &sys, const SyntheticWorkload &workload,
                 std::uint64_t fingerprint)
{
    Serializer s;
    s.beginSection("workload");
    workload.serialize(s);
    s.endSection();
    sys.serializeState(s);
    return makeSnapshotFile(fingerprint, s);
}

/**
 * Functional warming: one serial pass over the op streams. Each op is
 * applied architecturally (Node::warmAccess) at a shared monotonic warm
 * tick — one tick per op, so LRU order matches program order — and at
 * every window start the cores are advanced to the warm tick and the
 * quiescent system is snapshotted.
 */
std::vector<std::vector<std::uint8_t>>
warmFunctional(const SystemConfig &config, const WorkloadProfile &profile,
               const RunOptions &opts,
               const std::vector<std::uint64_t> &starts,
               std::uint64_t fingerprint)
{
    const unsigned n_cpus = config.topology.numCpus;
    SyntheticWorkload workload(profile, n_cpus, opts.opsPerCpu, opts.seed);
    System sys(config, workload);

    std::vector<Node *> peers;
    peers.reserve(n_cpus);
    for (unsigned i = 0; i < n_cpus; ++i)
        peers.push_back(&sys.node(i));
    for (Node *n : peers)
        n->setWarmPeers(&peers);

    Tick warm_tick = 0;
    std::vector<std::uint64_t> instr_delta(n_cpus, 0);
    std::vector<std::uint64_t> memop_delta(n_cpus, 0);

    std::vector<std::vector<std::uint8_t>> snapshots;
    snapshots.reserve(starts.size());

    for (std::uint64_t target : starts) {
        workload.setPauseAt(target);
        // Round-robin draw, one op per CPU per pass: the interleaving a
        // lock-step detailed run approximates, and fully deterministic.
        bool drew = true;
        while (drew) {
            drew = false;
            for (unsigned cpu = 0; cpu < n_cpus; ++cpu) {
                CpuOp op;
                if (!workload.next(static_cast<CpuId>(cpu), op))
                    continue;
                drew = true;
                ++warm_tick;
                instr_delta[cpu] += op.gap + 1;
                ++memop_delta[cpu];
                sys.node(cpu).warmAccess(op.kind, op.addr, warm_tick);
            }
        }
        for (unsigned cpu = 0; cpu < n_cpus; ++cpu) {
            sys.core(cpu).warmAdvance(warm_tick, instr_delta[cpu],
                                      memop_delta[cpu]);
            instr_delta[cpu] = 0;
            memop_delta[cpu] = 0;
        }
        snapshots.push_back(makeWarmSnapshot(sys, workload, fingerprint));
    }

    for (Node *n : peers)
        n->setWarmPeers(nullptr);
    return snapshots;
}

/**
 * Detailed warming: the simulateCheckpointed drain loop with the pause
 * schedule at the window starts, snapshotting to memory instead of disk.
 * The reference mode: no speedup, but the warm state is exact.
 */
std::vector<std::vector<std::uint8_t>>
warmDetailed(const SystemConfig &config, const WorkloadProfile &profile,
             const RunOptions &opts,
             const std::vector<std::uint64_t> &starts,
             std::uint64_t fingerprint)
{
    const unsigned n_cpus = config.topology.numCpus;
    SyntheticWorkload workload(profile, n_cpus, opts.opsPerCpu, opts.seed);
    System sys(config, workload);

    std::vector<std::vector<std::uint8_t>> snapshots;
    snapshots.reserve(starts.size());

    bool first = true;
    for (std::uint64_t target : starts) {
        workload.setPauseAt(target);
        if (first)
            sys.start();
        else
            sys.resumePhase();
        first = false;

        const std::uint64_t executed = sys.eq().run(opts.maxEvents);
        if (executed >= opts.maxEvents)
            fatal("simulateSampled: event cap hit (%llu) during detailed "
                  "warming — runaway simulation?",
                  static_cast<unsigned long long>(opts.maxEvents));
        if (!sys.allCoresFinished())
            panic("simulateSampled: event queue drained before cores "
                  "reached the window start");

        snapshots.push_back(makeWarmSnapshot(sys, workload, fingerprint));
    }
    return snapshots;
}

/** Restore one window's snapshot and run windowOps per CPU in detail. */
RunResult
runWindow(const SystemConfig &config, const WorkloadProfile &profile,
          const RunOptions &opts, const std::vector<std::uint8_t> &bytes,
          std::uint64_t fingerprint, std::uint64_t window_index,
          std::uint64_t window_end)
{
    const unsigned n_cpus = config.topology.numCpus;
    SyntheticWorkload workload(profile, n_cpus, opts.opsPerCpu, opts.seed);
    System sys(config, workload);

    Deserializer d;
    const std::string label =
        "window " + std::to_string(window_index) + " snapshot";
    const std::string err = d.openBytes(bytes, label);
    if (!err.empty())
        fatal("simulateSampled: %s", err.c_str());
    if (d.fingerprint() != fingerprint)
        panic("simulateSampled: warm snapshot fingerprint mismatch");

    {
        SectionReader w = d.section("workload");
        workload.deserialize(w);
    }
    sys.restoreState(d);

    // The window measures only its own ops: reset everything and record
    // per-core retire baselines (instruction counters are cumulative).
    std::vector<std::uint64_t> instr_base(n_cpus);
    for (unsigned i = 0; i < n_cpus; ++i)
        instr_base[i] = sys.core(i).instructions();
    const Tick measure_start = sys.maxCoreClock();
    sys.resetStats(measure_start);

    workload.setPauseAt(window_end);
    sys.resumePhase();

    const std::uint64_t executed = sys.eq().run(opts.maxEvents);
    if (executed >= opts.maxEvents)
        fatal("simulateSampled: event cap hit (%llu) inside a "
              "measurement window — runaway simulation?",
              static_cast<unsigned long long>(opts.maxEvents));
    if (!sys.allCoresFinished())
        panic("simulateSampled: event queue drained before the window "
              "completed");

    RunResult r =
        collectRunResult(sys, profile.name, opts.seed, measure_start);
    // collectRunResult reports cumulative retire counts; the window's
    // share is the delta from the restore point.
    r.instructions = 0;
    for (unsigned i = 0; i < n_cpus; ++i)
        r.instructions += sys.core(i).instructions() - instr_base[i];
    return r;
}

std::uint64_t
scaleCount(std::uint64_t sum, double scale)
{
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(sum) * scale));
}

} // namespace

namespace {

/** One sampled run at a fixed window count @p k (options validated). */
RunResult
sampledAtK(const SystemConfig &config, const WorkloadProfile &profile,
           const RunOptions &opts, const SamplingOptions &sopts,
           std::uint64_t k)
{
    const std::uint64_t w = sopts.windowOps;
    const std::uint64_t span = opts.opsPerCpu - opts.warmupOps;
    if (w > span / k)
        fatal("simulateSampled: %llu windows of %llu ops do not fit in "
              "the %llu post-warmup ops (need windowOps <= span / "
              "windows = %llu)",
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(span),
              static_cast<unsigned long long>(span / k));

    // The fingerprint ties every window to this exact run identity; the
    // window geometry stands in for the checkpoint interval.
    const std::uint64_t fingerprint =
        snapshotFingerprint(config, profile.name, opts, k * 1000000 + w);

    const std::vector<std::uint64_t> starts =
        windowStarts(opts.warmupOps, span, k);

    std::vector<std::vector<std::uint8_t>> snapshots =
        sopts.warmMode == WarmMode::Functional
            ? warmFunctional(config, profile, opts, starts, fingerprint)
            : warmDetailed(config, profile, opts, starts, fingerprint);

    // Measurement windows: embarrassingly parallel, each owning a
    // private System restored from its snapshot. Results land in window
    // order, so aggregation is identical at any job count.
    std::vector<RunResult> windows(static_cast<std::size_t>(k));
    if (sopts.jobs == 1 || k == 1) {
        for (std::uint64_t i = 0; i < k; ++i)
            windows[static_cast<std::size_t>(i)] =
                runWindow(config, profile, opts, snapshots[i], fingerprint,
                          i, starts[i] + w);
    } else {
        ThreadPool pool(sopts.jobs);
        std::vector<std::future<RunResult>> futures;
        futures.reserve(static_cast<std::size_t>(k));
        for (std::uint64_t i = 0; i < k; ++i) {
            futures.push_back(pool.submit([&, i] {
                return runWindow(config, profile, opts, snapshots[i],
                                 fingerprint, i, starts[i] + w);
            }));
        }
        for (std::uint64_t i = 0; i < k; ++i)
            windows[static_cast<std::size_t>(i)] = futures[i].get();
    }

    // Aggregate: counts scale up by span / (K * w); ratio and latency
    // metrics average over windows; the CI samples are per-window.
    const double scale = static_cast<double>(span) /
                         static_cast<double>(k * w);

    RunResult agg;
    agg.workload = windows.front().workload;
    agg.regionBytes = windows.front().regionBytes;
    agg.seed = windows.front().seed;
    agg.topology = windows.front().topology;
    agg.nodes = windows.front().nodes;

    std::vector<double> s_cycles, s_lat, s_miss, s_avoid, s_bcast;
    std::uint64_t cycles_sum = 0;
    double l2_sum = 0.0, lat_sum = 0.0, bcast_sum = 0.0;
    for (const RunResult &r : windows) {
        agg.requestsTotal += r.requestsTotal;
        agg.broadcasts += r.broadcasts;
        agg.directs += r.directs;
        agg.locals += r.locals;
        agg.writebacks += r.writebacks;
        for (std::size_t c = 0; c < RunResult::kNumCat; ++c) {
            agg.broadcastsByCat[c] += r.broadcastsByCat[c];
            agg.directsByCat[c] += r.directsByCat[c];
            agg.localsByCat[c] += r.localsByCat[c];
        }
        agg.oracleTotal += r.oracleTotal;
        agg.oracleUnnecessary += r.oracleUnnecessary;
        for (std::size_t c = 0; c < RunResult::kNumCat; ++c) {
            agg.oracleTotalByCat[c] += r.oracleTotalByCat[c];
            agg.oracleUnnecessaryByCat[c] += r.oracleUnnecessaryByCat[c];
        }
        agg.cacheToCache += r.cacheToCache;
        agg.memorySupplied += r.memorySupplied;
        agg.localResolves += r.localResolves;
        agg.interChipBroadcasts += r.interChipBroadcasts;
        agg.inclusionWritebacks += r.inclusionWritebacks;
        agg.instructions += r.instructions;
        cycles_sum += r.cycles;

        l2_sum += r.l2MissRatio;
        lat_sum += r.avgMissLatency;
        bcast_sum += r.avgBroadcastsPer100k;
        agg.peakBroadcastsPer100k = std::max(agg.peakBroadcastsPer100k,
                                             r.peakBroadcastsPer100k);

        s_cycles.push_back(static_cast<double>(r.cycles));
        s_lat.push_back(r.avgMissLatency);
        s_miss.push_back(r.l2MissRatio);
        s_avoid.push_back(r.avoidedFraction());
        s_bcast.push_back(r.avgBroadcastsPer100k);
    }

    const double n = static_cast<double>(windows.size());
    agg.cycles = scaleCount(cycles_sum, scale);
    agg.instructions = scaleCount(agg.instructions, scale);
    agg.requestsTotal = scaleCount(agg.requestsTotal, scale);
    agg.broadcasts = scaleCount(agg.broadcasts, scale);
    agg.directs = scaleCount(agg.directs, scale);
    agg.locals = scaleCount(agg.locals, scale);
    agg.writebacks = scaleCount(agg.writebacks, scale);
    for (std::size_t c = 0; c < RunResult::kNumCat; ++c) {
        agg.broadcastsByCat[c] = scaleCount(agg.broadcastsByCat[c], scale);
        agg.directsByCat[c] = scaleCount(agg.directsByCat[c], scale);
        agg.localsByCat[c] = scaleCount(agg.localsByCat[c], scale);
        agg.oracleTotalByCat[c] =
            scaleCount(agg.oracleTotalByCat[c], scale);
        agg.oracleUnnecessaryByCat[c] =
            scaleCount(agg.oracleUnnecessaryByCat[c], scale);
    }
    agg.oracleTotal = scaleCount(agg.oracleTotal, scale);
    agg.oracleUnnecessary = scaleCount(agg.oracleUnnecessary, scale);
    agg.cacheToCache = scaleCount(agg.cacheToCache, scale);
    agg.memorySupplied = scaleCount(agg.memorySupplied, scale);
    agg.localResolves = scaleCount(agg.localResolves, scale);
    agg.interChipBroadcasts = scaleCount(agg.interChipBroadcasts, scale);
    agg.inclusionWritebacks = scaleCount(agg.inclusionWritebacks, scale);

    agg.l2MissRatio = l2_sum / n;
    agg.avgMissLatency = lat_sum / n;
    agg.avgBroadcastsPer100k = bcast_sum / n;

    // RCA scalars, histograms and distributions come from the last
    // window: the RCA stats are cumulative over warm history, so the
    // final window has seen the most (see docs/SAMPLING.md). The
    // miss-latency histogram, by contrast, is window-measured and
    // merges across all windows.
    const RunResult &last = windows.back();
    agg.rcaEvictedEmpty = last.rcaEvictedEmpty;
    agg.rcaEvictedOne = last.rcaEvictedOne;
    agg.rcaEvictedTwo = last.rcaEvictedTwo;
    agg.rcaEvictedMore = last.rcaEvictedMore;
    agg.rcaSelfInvalidations = last.rcaSelfInvalidations;
    agg.avgLinesPerEvictedRegion = last.avgLinesPerEvictedRegion;
    for (const HistogramSnapshot &h : last.histograms) {
        if (h.name == "node.miss_latency")
            continue;
        agg.histograms.push_back(h);
    }
    agg.distributions = last.distributions;
    {
        HistogramSnapshot merged;
        bool have = false;
        for (const RunResult &r : windows) {
            for (const HistogramSnapshot &h : r.histograms) {
                if (h.name != "node.miss_latency")
                    continue;
                if (!have) {
                    merged = h;
                    have = true;
                } else {
                    merged.samples += h.samples;
                    merged.sum += h.sum;
                    for (std::size_t b = 0; b < merged.buckets.size(); ++b)
                        merged.buckets[b] += h.buckets[b];
                }
            }
        }
        if (have)
            agg.histograms.insert(agg.histograms.begin(),
                                  std::move(merged));
    }

    auto info = std::make_shared<SamplingInfo>();
    info->windows = k;
    info->windowOps = w;
    info->warmMode = warmModeName(sopts.warmMode);
    info->spanOps = span;
    info->sampledOps = k * w;
    info->scale = scale;
    info->cycles = summarize(s_cycles);
    info->avgMissLatency = summarize(s_lat);
    info->l2MissRatio = summarize(s_miss);
    info->avoidedFraction = summarize(s_avoid);
    info->avgBroadcastsPer100k = summarize(s_bcast);
    agg.sampling = std::move(info);
    return agg;
}

/**
 * Every headline metric's relative 95% CI half-width within @p target?
 * A zero mean with nonzero spread can never satisfy a relative target,
 * so it reports unmet (the adaptive loop then runs to its window cap).
 */
bool
ciTargetMet(const SamplingInfo &info, double target)
{
    const RunSummary *metrics[] = {
        &info.cycles, &info.avgMissLatency, &info.l2MissRatio,
        &info.avoidedFraction, &info.avgBroadcastsPer100k,
    };
    for (const RunSummary *m : metrics) {
        if (m->count < 2)
            return false;
        if (m->ci95Half == 0.0)
            continue;
        if (m->mean == 0.0 ||
            m->ci95Half / std::fabs(m->mean) > target)
            return false;
    }
    return true;
}

} // namespace

RunResult
simulateSampled(const SystemConfig &config, const WorkloadProfile &profile,
                const RunOptions &opts, const SamplingOptions &sopts)
{
    const std::uint64_t w = sopts.windowOps;
    if (sopts.windows == 0)
        return simulateOnce(config, profile, opts);
    if (w == 0)
        fatal("simulateSampled: --window-ops must be >= 1");
    if (config.dma.enabled)
        fatal("simulateSampled: sampling does not support DMA (the DMA "
              "engine is event-driven and cannot be functionally "
              "warmed) — run full-detail instead");
    if (!opts.capturePath.empty())
        fatal("simulateSampled: --capture cannot be combined with "
              "sampling (the warm phase skips the op tee); capture a "
              "full-detail run instead");
    if (opts.warmupOps >= opts.opsPerCpu)
        fatal("simulateSampled: warmup (%llu) must be smaller than ops "
              "per CPU (%llu)",
              static_cast<unsigned long long>(opts.warmupOps),
              static_cast<unsigned long long>(opts.opsPerCpu));

    if (sopts.ciTarget <= 0.0)
        return sampledAtK(config, profile, opts, sopts, sopts.windows);

    // Adaptive precision (docs/SAMPLING.md): double the window count
    // until every headline metric's relative 95% CI half-width reaches
    // the target, capped by --max-windows and by the window geometry
    // (k windows of w ops must fit in the post-warmup span). Each
    // attempt is a fresh deterministic run, so the returned result is
    // identical to a fixed --windows run at the final K.
    const std::uint64_t span = opts.opsPerCpu - opts.warmupOps;
    const std::uint64_t geom_cap = span / w;
    std::uint64_t cap = sopts.maxWindows ? sopts.maxWindows : 1;
    if (geom_cap > 0 && cap > geom_cap)
        cap = geom_cap;
    std::uint64_t k = sopts.windows < cap ? sopts.windows : cap;
    for (;;) {
        RunResult r = sampledAtK(config, profile, opts, sopts, k);
        if (k >= cap || ciTargetMet(*r.sampling, sopts.ciTarget))
            return r;
        k = k * 2 < cap ? k * 2 : cap;
    }
}

} // namespace cgct
